"""Unit tests for the incremental evaluation engine's building blocks:
:class:`repro.core.session.ReuseSession` and
:class:`repro.core.evaluate.PairScorer` / :func:`batch_pair_costs`.

The end-to-end engine-vs-reference identity lives in
``tests/property/test_equivalence_diff.py``; these tests pin the pieces
in isolation — batched costs vs. the per-pair evaluators, the memo, and
the serial-fallback threshold.
"""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.core.conditions import ReuseAnalysis
from repro.core.evaluate import (
    PairScorer,
    batch_pair_costs,
    evaluate_pair_depth,
    evaluate_pair_duration,
    tail_path_lengths,
)
from repro.core.profile import ReuseEvalStats
from repro.core.session import ReuseSession
from repro.dag.analysis import critical_path_length, node_weight_depth
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import ReuseError
from repro.workloads.bv import bv_circuit


class TestBatchPairCosts:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_per_pair_depth(self, seed):
        circuit = random_circuit(5, num_gates=14, seed=seed, measure=True)
        analysis = ReuseAnalysis(circuit)
        pairs = analysis.valid_pairs()
        if not pairs:
            pytest.skip("no valid pairs for this seed")
        batched = batch_pair_costs(analysis.dag, pairs, objective="depth")
        for pair, cost in zip(pairs, batched):
            assert cost == evaluate_pair_depth(analysis.dag, pair)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("reset_style", ["cif", "builtin"])
    def test_matches_per_pair_duration(self, seed, reset_style):
        circuit = random_circuit(5, num_gates=14, seed=seed, measure=True)
        analysis = ReuseAnalysis(circuit)
        pairs = analysis.valid_pairs()
        if not pairs:
            pytest.skip("no valid pairs for this seed")
        batched = batch_pair_costs(
            analysis.dag, pairs, objective="duration", reset_style=reset_style
        )
        for pair, cost in zip(pairs, batched):
            assert cost == evaluate_pair_duration(
                analysis.dag, pair, reset_style
            )

    def test_unknown_objective_rejected(self):
        dag = DAGCircuit.from_circuit(bv_circuit(3))
        with pytest.raises(ReuseError):
            batch_pair_costs(dag, [], objective="fidelity")

    def test_tail_plus_finish_covers_critical_path(self):
        dag = DAGCircuit.from_circuit(bv_circuit(4))
        tails = tail_path_lengths(dag, node_weight_depth)
        assert max(tails.values()) == critical_path_length(
            dag, node_weight_depth
        )


class TestPairScorer:
    def test_memo_counts_hits_until_invalidated(self):
        circuit = bv_circuit(5)
        analysis = ReuseAnalysis(circuit)
        pairs = analysis.valid_pairs()
        stats = ReuseEvalStats()
        with PairScorer(stats=stats, parallel=False) as scorer:
            first = scorer.score_all(analysis.dag, pairs)
            again = scorer.score_all(analysis.dag, pairs)
            assert first == again
            assert stats.counters["evaluations"] == len(pairs)
            assert stats.counters["cache_hits"] == len(pairs)
            scorer.invalidate()
            scorer.score_all(analysis.dag, pairs)
            assert stats.counters["evaluations"] == 2 * len(pairs)

    def test_small_batches_stay_serial(self):
        """Below the workload threshold no process pool is spawned."""
        circuit = bv_circuit(5)
        analysis = ReuseAnalysis(circuit)
        stats = ReuseEvalStats()
        with PairScorer(stats=stats, parallel=True) as scorer:
            scorer.score_all(analysis.dag, analysis.valid_pairs())
            assert scorer._executor is None
            assert stats.counters.get("serial_batches", 0) == 1
            assert stats.counters.get("parallel_batches", 0) == 0

    def test_forced_parallel_matches_serial_scores(self):
        circuit = bv_circuit(8)
        analysis = ReuseAnalysis(circuit)
        pairs = analysis.valid_pairs()
        stats = ReuseEvalStats()
        with PairScorer(
            stats=stats, parallel=True, parallel_threshold=0, max_workers=2
        ) as forced:
            parallel_scores = forced.score_all(analysis.dag, pairs)
            assert stats.counters["parallel_batches"] == 1
        with PairScorer(parallel=False) as serial:
            assert parallel_scores == serial.score_all(analysis.dag, pairs)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ReuseError):
            PairScorer(objective="fidelity")


class TestReuseSession:
    def test_unknown_reset_style_rejected(self):
        with pytest.raises(ReuseError):
            ReuseSession(bv_circuit(3), reset_style="zap")

    def test_valid_pairs_match_analysis(self):
        circuit = bv_circuit(5)
        session = ReuseSession(circuit)
        live = [(p.source, p.target) for p in session.valid_pairs()]
        fresh = [
            (p.source, p.target)
            for p in ReuseAnalysis(circuit).valid_pairs()
        ]
        assert live == fresh

    def test_apply_tracks_materialised_circuit(self):
        session = ReuseSession(bv_circuit(5))
        start = session.num_qubits
        session.apply(session.valid_pairs()[0])
        assert session.num_qubits == start - 1
        assert session.circuit.num_qubits == start - 1
        assert len(session.pairs) == 1
        assert session.generation == 1
        assert session.stats.counters["steps"] == 1
        assert session.stats.counters["mask_updates"] > 0

    def test_potentials_match_reference_lookahead(self):
        from repro.core.qs_caqr import QSCaQR
        from repro.core.transform import apply_reuse_pair

        circuit = bv_circuit(5)
        session = ReuseSession(circuit)
        pairs = session.valid_pairs()
        potentials = session.reuse_potentials(pairs)
        for pair in pairs:
            transformed = apply_reuse_pair(
                circuit, pair, validate=False
            ).circuit
            assert potentials[pair] == QSCaQR._reuse_potential(transformed), pair

    def test_potentials_memoised_per_step(self):
        session = ReuseSession(bv_circuit(5))
        pairs = session.valid_pairs()
        session.reuse_potentials(pairs)
        computed = session.stats.counters["lookahead_evaluations"]
        session.reuse_potentials(pairs)
        assert session.stats.counters["lookahead_evaluations"] == computed
        assert session.stats.counters["cache_hits"] == len(pairs)
        session.apply(pairs[0])
        session.reuse_potentials(session.valid_pairs())
        assert session.stats.counters["lookahead_evaluations"] > computed

    def test_degenerate_circuit_no_pairs(self):
        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        session = ReuseSession(circuit)
        assert session.valid_pairs() == []
