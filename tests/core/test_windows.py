"""Unit tests for gate-level reuse windows (the chain subsystem's analysis half)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import ReusePair, WindowAnalysis, valid_reuse_pairs
from repro.exceptions import ReuseError
from repro.workloads import bv_circuit


def _ladder(n: int) -> QuantumCircuit:
    """CX chain q0->q1->...->q{n-1}, all measured."""
    circuit = QuantumCircuit(n, n)
    for i in range(n - 1):
        circuit.cx(i, i + 1)
    for i in range(n):
        circuit.measure(i, i)
    return circuit


class TestReuseWindow:
    def test_ladder_windows_have_staggered_intervals(self):
        analysis = WindowAnalysis(_ladder(4))
        w0, w3 = analysis.window(0), analysis.window(3)
        assert w0.birth_layer == 0
        assert w0.death_layer < w3.death_layer
        assert w0.dies_mid_circuit
        assert not w3.dies_mid_circuit
        assert w3.tail_slack == 0
        assert w0.tail_slack > 0

    def test_terminal_measure_flag(self):
        analysis = WindowAnalysis(_ladder(3))
        assert all(analysis.window(q).terminal_measure for q in range(3))
        bare = QuantumCircuit(2, 1)
        bare.cx(0, 1)
        bare.measure(1, 0)
        windows = WindowAnalysis(bare)
        assert not windows.window(0).terminal_measure
        assert windows.window(1).terminal_measure

    def test_mid_circuit_ops_counted_per_window(self):
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.reset(0)
        circuit.h(0)
        circuit.measure(0, 1)
        window = WindowAnalysis(circuit).window(0)
        assert window.mid_circuit_ops == 2  # the inner measure + reset
        assert window.terminal_measure

    def test_idle_wire_has_empty_window(self):
        circuit = QuantumCircuit(3, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        window = WindowAnalysis(circuit).window(2)
        assert not window.used
        assert window.span_layers == 0
        assert not window.dies_mid_circuit

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(ReuseError):
            WindowAnalysis(_ladder(3)).window(3)

    def test_mid_circuit_windows_sorted_by_death(self):
        analysis = WindowAnalysis(_ladder(5))
        dying = analysis.mid_circuit_windows()
        deaths = [w.death_layer for w in dying]
        assert deaths == sorted(deaths)
        # q3's measure shares the final layer with q4's, so it does not
        # die mid-circuit; the first three all do
        assert [w.qubit for w in dying] == [0, 1, 2]


class TestPairCompatibility:
    @pytest.mark.parametrize("circuit", [_ladder(5), bv_circuit(5)])
    def test_matches_the_paper_conditions(self, circuit):
        """Window compatibility is exactly the CaQR pair validity —
        the interval prune is an optimisation, not a relaxation."""
        analysis = WindowAnalysis(circuit)
        expected = {(p.source, p.target) for p in valid_reuse_pairs(circuit)}
        got = {(p.source, p.target) for p in analysis.compatible_pairs()}
        assert got == expected

    def test_self_and_idle_pairs_rejected(self):
        circuit = QuantumCircuit(3, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        analysis = WindowAnalysis(circuit)
        assert not analysis.compatible(0, 0)
        assert not analysis.compatible(0, 2)  # idle target
        assert not analysis.compatible(2, 0)  # idle source

    def test_matching_bound_is_a_true_floor(self):
        circuit = bv_circuit(5)
        analysis = WindowAnalysis(circuit)
        floor = circuit.num_qubits - analysis.matching_bound()
        assert floor == 2  # BV compresses to exactly 2 qubits


class TestChainLifting:
    def test_merge_appends_target_chain(self):
        wires = ((0,), (1,), (2,))
        merged = WindowAnalysis.merge(wires, 0, 2)
        assert merged == ((0, 2), (1,))
        again = WindowAnalysis.merge(merged, 0, 1)
        assert again == ((0, 2, 1),)

    def test_chain_merges_shrink_after_each_merge(self):
        analysis = WindowAnalysis(_ladder(4))
        wires = analysis.initial_state()
        options, rows = analysis.chain_merges(wires)
        # adjacent qubits share a CX (Condition 1), so merges skip a rung
        assert (0, 2) in options and (0, 1) not in options
        merged = WindowAnalysis.merge(wires, 0, 2)
        fewer, _ = analysis.chain_merges(merged)
        assert len(fewer) < len(options)

    def test_chain_floor_matches_pair_floor_at_root(self):
        analysis = WindowAnalysis(bv_circuit(5))
        assert analysis.chain_floor(analysis.initial_state()) == 2

    def test_chain_options_respect_pair_validity(self):
        """Chain merges lift the pair conditions member-wise: after a
        legal merge, every remaining option is still pairwise valid and
        never pairs chains whose members share a gate."""
        circuit = _ladder(4)
        analysis = WindowAnalysis(circuit)
        merged = WindowAnalysis.merge(analysis.initial_state(), 0, 2)
        options, _ = analysis.chain_merges(merged)
        for u, v in options:
            for a in merged[u]:
                for b in merged[v]:
                    assert b not in analysis._interacts[a]
        # the singleton-chain options are exactly the compatible pairs
        singles = {
            (merged[u][0], merged[v][0])
            for u, v in options
            if len(merged[u]) == 1 and len(merged[v]) == 1
        }
        for source, target in singles:
            assert analysis.compatible(source, target)

    def test_canonical_interns_symmetric_states(self):
        """GHZ-style symmetric targets intern alike: merging onto either
        of two interchangeable qubits yields the same canonical key."""
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.h(1)
        circuit.h(2)
        circuit.measure(1, 1)
        circuit.measure(2, 2)
        analysis = WindowAnalysis(circuit)
        wires = analysis.initial_state()
        via_1 = WindowAnalysis.merge(wires, 0, 1)
        via_2 = WindowAnalysis.merge(wires, 0, 2)
        assert analysis.canonical(via_1) == analysis.canonical(via_2)

    def test_initial_state_covers_every_wire(self):
        analysis = WindowAnalysis(_ladder(3))
        assert analysis.initial_state() == ((0,), (1,), (2,))

    def test_pairs_are_reuse_pairs(self):
        pairs = WindowAnalysis(_ladder(3)).compatible_pairs()
        assert pairs and all(isinstance(p, ReusePair) for p in pairs)
