"""Tests for SR-CaQR's trial grid, hint handling, and RouteStats wiring."""

import pytest

import repro.core.sr_caqr as sr_caqr_module
from repro.core import SRCaQR
from repro.exceptions import ReuseError, TranspilerError
from repro.hardware import ibm_mumbai
from repro.transpiler import RouteStats
from repro.workloads import bv_circuit, regular_benchmark


class TestTrialGrid:
    def test_trials_one_runs_exactly_one_trial(self):
        """Regression: ``max(trials - 1, 1)`` used to turn ``trials=1``
        into two hint seeds; the grid must honour the requested count."""
        router = SRCaQR(ibm_mumbai(), parallel=False)
        router.run(regular_benchmark("xor_5"), trials=1, qs_assist=False)
        assert router.stats.counters["sr_trials"] == 1

    @pytest.mark.parametrize("trials", [2, 3])
    def test_trial_count_honoured(self, trials):
        router = SRCaQR(ibm_mumbai(), parallel=False)
        router.run(regular_benchmark("xor_5"), trials=trials, qs_assist=False)
        assert router.stats.counters["sr_trials"] == trials

    def test_zero_trials_rejected(self):
        with pytest.raises(ReuseError):
            SRCaQR(ibm_mumbai()).run(bv_circuit(4), trials=0)

    def test_parallel_flag_reflected_in_stats(self):
        circuit = regular_benchmark("xor_5")
        serial = SRCaQR(ibm_mumbai(), parallel=False)
        serial.run(circuit, trials=2, qs_assist=False)
        # layout hint trials also report into serial_trials, so only the
        # parallel counter separates the two modes cleanly
        assert serial.stats.counters.get("parallel_trials", 0) == 0
        assert serial.stats.counters["serial_trials"] >= 2
        fanned = SRCaQR(ibm_mumbai(), parallel=True, max_workers=2)
        fanned.run(circuit, trials=2, qs_assist=False)
        assert fanned.stats.counters["parallel_trials"] == 2


class TestHintHandling:
    def test_expected_hint_failure_falls_back(self, monkeypatch):
        """A TranspilerError inside the hint-layout search must not abort
        the compilation — the router maps hint-free and counts it."""

        def _boom(*args, **kwargs):
            raise TranspilerError("hint search stalled")

        monkeypatch.setattr(sr_caqr_module, "sabre_layout", _boom)
        router = SRCaQR(ibm_mumbai(), parallel=False)
        result = router.run(bv_circuit(5), trials=2, qs_assist=False)
        assert result.circuit.num_qubits == ibm_mumbai().num_qubits
        assert router.stats.counters["hint_fallbacks"] >= 1

    def test_programming_error_propagates(self, monkeypatch):
        """Bugs must not be swallowed by the hint fallback."""

        def _bug(*args, **kwargs):
            raise ValueError("not an expected routing failure")

        monkeypatch.setattr(sr_caqr_module, "sabre_layout", _bug)
        router = SRCaQR(ibm_mumbai(), parallel=False)
        with pytest.raises(ValueError):
            router.run(bv_circuit(5), trials=2, qs_assist=False)


class TestRouteStatsSurface:
    def test_counters_populated(self):
        router = SRCaQR(ibm_mumbai(), parallel=False)
        result = router.run(bv_circuit(6), trials=2, qs_assist=False)
        counters = router.stats.counters
        assert counters["sr_trials"] == 2
        assert counters["reuses"] == result.reuse_count
        assert counters["distance_cache_builds"] == 1
        assert counters.get("slack_recomputes", 0) > 0
        assert "sr_run" in router.stats.timers

    def test_incremental_engine_reports_slack_counters(self):
        incremental = SRCaQR(ibm_mumbai(), parallel=False, incremental=True)
        incremental.run(bv_circuit(8), trials=1, qs_assist=False)
        assert incremental.stats.counters.get("slack_node_updates", 0) > 0

    def test_stats_merge_and_rates(self):
        left = RouteStats()
        left.count("slack_recomputes", 3)
        left.count("slack_recomputes_avoided", 1)
        left.add_time("route", 0.5)
        right = RouteStats()
        right.count("slack_recomputes_avoided", 4)
        right.add_time("route", 0.25)
        right.set_value("gauge", 2.0)
        left.merge(right)
        assert left.counters["slack_recomputes_avoided"] == 5
        assert left.timers["route"] == pytest.approx(0.75)
        assert left.values["gauge"] == 2.0
        assert left.slack_reuse_rate == pytest.approx(5 / 8)
        left.reset()
        assert left.slack_reuse_rate == 0.0
        assert left.summary() == ""

    def test_summary_format(self):
        stats = RouteStats()
        stats.count("swaps_inserted", 2)
        stats.add_time("route", 0.125)
        assert stats.summary() == "swaps_inserted=2, route_s=0.125"
