"""Unit tests for the chain beam search (the subsystem's search half)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import ChainReuse, QSCaQR, ReuseEvalStats
from repro.core.transform import apply_reuse_chain
from repro.exceptions import ReuseError
from repro.sim.verify import assert_equivalent
from repro.workloads import bv_circuit, ghz_measured


def _mixed_ladder(n: int) -> QuantumCircuit:
    """CX chain with only the even qubits measured — half the windows
    end in a terminal measurement, half do not, so the generic and
    dual-register cost models genuinely disagree."""
    circuit = QuantumCircuit(n, n // 2)
    for i in range(n - 1):
        circuit.cx(i, i + 1)
    for slot, i in enumerate(range(0, n, 2)):
        circuit.measure(i, slot)
    return circuit


class TestChainSearch:
    def test_bv_reaches_the_known_optimum(self):
        result = ChainReuse().run(bv_circuit(5))
        assert result.qubits == 2
        assert result.floor == 2
        assert not result.from_greedy
        assert_equivalent(bv_circuit(5), result.circuit)

    def test_result_plan_replays_through_the_transform_layer(self):
        """The emitted pairs are per-step wire labels — replaying them
        through apply_reuse_chain reproduces the circuit exactly."""
        circuit = bv_circuit(5)
        result = ChainReuse().run(circuit)
        replayed = apply_reuse_chain(circuit, result.pairs)
        assert replayed.num_qubits == result.qubits
        assert replayed.data == result.circuit.data

    def test_plan_accounting_is_consistent(self):
        circuit = ghz_measured(5)
        result = ChainReuse().run(circuit)
        plan = result.plan
        assert plan.width == circuit.num_qubits - len(plan.pairs)
        assert plan.inserted_resets == len(plan.pairs)
        assert 0 <= plan.inserted_measures <= len(plan.pairs)
        assert sum(len(chain) for chain in plan.chains) == circuit.num_qubits

    def test_no_merge_possible_returns_input_unchanged(self):
        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        result = ChainReuse().run(circuit)
        assert result.qubits == 2
        assert result.pairs == []

    def test_deterministic_across_runs(self):
        circuit = _mixed_ladder(8)
        first = ChainReuse().run(circuit)
        second = ChainReuse().run(circuit)
        assert first.pairs == second.pairs
        assert first.circuit.data == second.circuit.data

    def test_narrow_beam_still_sound_and_guarded(self):
        """Even a width-1 beam is never wider than greedy QS."""
        circuit = _mixed_ladder(8)
        result = ChainReuse(beam_width=1, materialize_top=1).run(circuit)
        greedy = QSCaQR(parallel=False).minimum_qubits(circuit)
        assert result.qubits <= greedy
        assert_equivalent(circuit, result.circuit)

    def test_stats_sink_is_shared(self):
        stats = ReuseEvalStats()
        engine = ChainReuse(stats=stats)
        engine.run(bv_circuit(4))
        assert stats.counters["windows"] == 4
        assert stats.counters["merges"] == 2
        assert stats.counters["plans_materialized"] >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"objective": "fidelity"},
            {"reset_style": "magic"},
            {"beam_width": 0},
            {"register_budget": 0},
            {"materialize_top": 0},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(ReuseError):
            ChainReuse(**kwargs)


class TestObjectives:
    def test_depth_objective_never_wider_and_no_deeper_at_same_width(self):
        circuit = _mixed_ladder(8)
        by_qubits = ChainReuse(objective="qubits").run(circuit)
        by_depth = ChainReuse(objective="depth").run(circuit)
        assert by_depth.qubits == by_qubits.qubits
        assert by_depth.depth <= by_qubits.depth

    def test_est_error_objective_prefers_terminal_measure_chains(self):
        """At equal width, est_error never inserts more dynamic ops."""
        circuit = _mixed_ladder(8)
        base = ChainReuse(objective="qubits").run(circuit)
        careful = ChainReuse(objective="est_error").run(circuit)
        assert careful.qubits == base.qubits
        assert careful.plan.mid_circuit_ops <= base.plan.mid_circuit_ops


class TestBudgetedMode:
    def test_reduce_to_stops_at_the_budget(self):
        circuit = bv_circuit(6)
        result = ChainReuse().reduce_to(circuit, 4)
        assert result.feasible
        assert result.qubits == 4  # stops merging once the budget fits
        assert_equivalent(circuit, result.circuit)

    def test_infeasible_budget_is_flagged_not_raised(self):
        stats = ReuseEvalStats()
        result = ChainReuse(stats=stats).reduce_to(bv_circuit(5), 1)
        assert not result.feasible
        assert result.qubits == 2
        assert stats.counters["budget_infeasible"] == 1

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ReuseError):
            ChainReuse().reduce_to(bv_circuit(4), 0)


class TestDualRegister:
    """The trapped-ion cost model (DeCross et al.): with routing free
    and measure/reset dominant, trade register width for fewer inserted
    mid-circuit dynamic operations."""

    def test_mixed_ladder_trades_width_for_fewer_mid_ops(self):
        circuit = _mixed_ladder(8)
        generic = ChainReuse().run(circuit)
        assert generic.qubits == 2
        assert generic.plan.mid_circuit_ops == 9
        dual = ChainReuse(
            dual_register=True, register_budget=generic.qubits + 2
        ).run(circuit)
        assert dual.feasible
        assert dual.qubits == 4
        assert dual.plan.mid_circuit_ops == 5
        assert dual.plan.inserted_measures < generic.plan.inserted_measures
        assert_equivalent(circuit, dual.circuit)

    def test_without_budget_defaults_to_the_matching_floor_budget(self):
        """With no explicit register size the floor becomes the budget:
        the search still minimises inserted dynamic ops among states
        that can reach it, so the result may sit above the floor but
        always below the generic plan's mid-circuit cost."""
        circuit = _mixed_ladder(8)
        generic = ChainReuse().run(circuit)
        dual = ChainReuse(dual_register=True).run(circuit)
        assert dual.feasible
        assert generic.floor <= dual.qubits <= circuit.num_qubits
        assert dual.plan.mid_circuit_ops <= generic.plan.mid_circuit_ops
        assert dual.qubits == 3 and dual.plan.mid_circuit_ops == 7

    def test_all_terminal_measures_make_the_models_agree(self):
        """When every window ends in a terminal measurement no merge
        inserts a measure, so dual-register collapses to width-first."""
        circuit = bv_circuit(5)
        generic = ChainReuse().run(circuit)
        dual = ChainReuse(
            dual_register=True, register_budget=generic.qubits
        ).run(circuit)
        assert dual.qubits == generic.qubits
        assert dual.plan.inserted_measures == 0
