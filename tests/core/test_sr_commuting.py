"""Tests for SR-CaQR on commuting applications (paper Section 3.3.2)."""

import networkx as nx
import pytest

from repro.core import QSCaQRCommuting, SRCaQRCommuting, find_sweet_spot
from repro.exceptions import ReuseError
from repro.hardware import ibm_mumbai
from repro.workloads import random_graph


def path_graph(n):
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


class TestSweetSpot:
    def test_picks_largest_saving_within_budget(self):
        sweep = QSCaQRCommuting(path_graph(8)).sweep()
        spot = find_sweet_spot(sweep, depth_tolerance=10.0)
        assert spot.qubits == min(p.qubits for p in sweep)

    def test_zero_tolerance_keeps_baseline_depth(self):
        sweep = QSCaQRCommuting(random_graph(10, 0.3, seed=1)).sweep()
        spot = find_sweet_spot(sweep, depth_tolerance=0.0, absolute_slack=0)
        assert spot.depth <= sweep[0].depth

    def test_absolute_slack_admits_one_reuse_block(self):
        sweep = QSCaQRCommuting(random_graph(10, 0.3, seed=2)).sweep()
        tight = find_sweet_spot(sweep, depth_tolerance=0.0, absolute_slack=0)
        slackful = find_sweet_spot(sweep, depth_tolerance=0.25, absolute_slack=4)
        assert slackful.qubits <= tight.qubits

    def test_empty_sweep_rejected(self):
        with pytest.raises(ReuseError):
            find_sweet_spot([])


class TestSRCommuting:
    def test_compiles_and_is_compliant(self):
        backend = ibm_mumbai()
        result = SRCaQRCommuting(backend).run(random_graph(10, 0.3, seed=2))
        for instruction in result.circuit.data:
            if len(instruction.qubits) == 2 and not instruction.is_directive():
                assert backend.coupling.are_adjacent(*instruction.qubits)

    def test_routing_driven_choice_is_no_worse_than_forced_baseline(self):
        """SR picks its reuse level by routing outcome (SWAPs first)."""
        backend = ibm_mumbai()
        graph = random_graph(10, 0.3, seed=2)
        chosen = SRCaQRCommuting(backend).run(graph)
        forced_full = SRCaQRCommuting(backend).run(graph, qubit_limit=10)
        assert chosen.swap_count <= forced_full.swap_count

    def test_qubit_limit_forces_reuse_pairs(self):
        backend = ibm_mumbai()
        result = SRCaQRCommuting(backend).run(random_graph(10, 0.3, seed=2), qubit_limit=7)
        assert result.qs_point.qubits == 7
        assert len(result.pairs) == 3

    def test_qubit_limit_respected(self):
        backend = ibm_mumbai()
        result = SRCaQRCommuting(backend).run(path_graph(8), qubit_limit=5)
        assert result.qs_point.qubits == 5

    def test_infeasible_limit_raises(self):
        backend = ibm_mumbai()
        with pytest.raises(ReuseError):
            SRCaQRCommuting(backend).run(nx.complete_graph(5), qubit_limit=2)

    def test_all_cost_gates_present(self):
        backend = ibm_mumbai()
        graph = random_graph(8, 0.3, seed=3)
        result = SRCaQRCommuting(backend).run(graph)
        assert result.circuit.count_ops()["rzz"] == graph.number_of_edges()

    def test_measurements_cover_every_logical_qubit(self):
        backend = ibm_mumbai()
        graph = random_graph(8, 0.3, seed=3)
        result = SRCaQRCommuting(backend).run(graph)
        measured_clbits = {
            i.clbits[0] for i in result.circuit.data if i.name == "measure"
        }
        assert set(range(8)).issubset(measured_clbits)
