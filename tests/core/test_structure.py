"""Tests for commuting-structure extraction and auto-dispatch."""

import networkx as nx
import pytest

from repro.circuit import QuantumCircuit
from repro.compile_api import caqr_compile
from repro.core.structure import extract_commuting_structure
from repro.sim import run_counts, total_variation_distance
from repro.workloads import bv_circuit, qaoa_maxcut_circuit, random_graph


class TestExtraction:
    def test_roundtrip_from_builder(self):
        graph = random_graph(8, 0.3, seed=3)
        circuit = qaoa_maxcut_circuit(graph, gammas=[0.7], betas=[0.3])
        structure = extract_commuting_structure(circuit)
        assert structure is not None
        assert set(structure.graph.edges) == set(
            tuple(sorted(e)) for e in graph.edges
        )
        assert structure.uniform_gamma() == pytest.approx(0.7)
        assert structure.uniform_beta() == pytest.approx(0.3)
        assert structure.measured == {q: q for q in range(8)}

    def test_heterogeneous_angles_detected(self):
        circuit = QuantumCircuit(3, 3)
        for q in range(3):
            circuit.h(q)
        circuit.rzz(0.4, 0, 1)
        circuit.rzz(0.9, 1, 2)
        for q in range(3):
            circuit.rx(0.6, q)
            circuit.measure(q, q)
        structure = extract_commuting_structure(circuit)
        assert structure is not None
        assert structure.uniform_gamma() is None
        assert structure.edge_angles[(0, 1)] == pytest.approx(0.4)

    def test_cz_edges_accepted(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.h(1)
        circuit.cz(0, 1)
        circuit.rx(0.8, 0)
        circuit.rx(0.8, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        structure = extract_commuting_structure(circuit)
        assert structure is not None
        assert structure.graph.has_edge(0, 1)

    def test_bv_is_not_commuting(self):
        assert extract_commuting_structure(bv_circuit(5)) is None

    def test_cx_rejects(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.h(1)
        circuit.cx(0, 1)
        circuit.rx(0.8, 0)
        circuit.rx(0.8, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        assert extract_commuting_structure(circuit) is None

    def test_missing_mixer_rejects(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.h(1)
        circuit.rzz(0.4, 0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        assert extract_commuting_structure(circuit) is None

    def test_two_rounds_rejects(self):
        graph = nx.path_graph(3)
        circuit = qaoa_maxcut_circuit(graph, gammas=[0.1, 0.2], betas=[0.3, 0.4])
        assert extract_commuting_structure(circuit) is None

    def test_conditional_rejects(self):
        circuit = qaoa_maxcut_circuit(nx.path_graph(3))
        circuit.x(0).c_if(0, 1)
        assert extract_commuting_structure(circuit) is None

    def test_barriers_tolerated(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.h(1)
        circuit.barrier()
        circuit.rzz(0.4, 0, 1)
        circuit.rx(0.8, 0)
        circuit.rx(0.8, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        assert extract_commuting_structure(circuit) is not None


class TestAutoDispatch:
    def test_qaoa_circuit_gets_commuting_savings(self):
        """The regular pipeline cannot reorder QAOA gates; auto-dispatch
        must unlock the (deeper) commuting-pipeline savings."""
        graph = random_graph(8, 0.3, seed=5)
        circuit = qaoa_maxcut_circuit(graph)
        auto = caqr_compile(circuit, mode="max_reuse")
        manual = caqr_compile(graph, mode="max_reuse")
        regular_only = caqr_compile(circuit, mode="max_reuse", auto_commuting=False)
        assert auto.metrics.qubits_used == manual.metrics.qubits_used
        assert auto.metrics.qubits_used <= regular_only.metrics.qubits_used

    def test_auto_dispatch_preserves_distribution(self):
        graph = random_graph(6, 0.4, seed=6)
        circuit = qaoa_maxcut_circuit(graph, gammas=[0.9], betas=[0.35])
        report = caqr_compile(circuit, mode="max_reuse")
        counts_original = run_counts(circuit, shots=6000, seed=7)
        counts_compiled = run_counts(report.circuit, shots=6000, seed=7)

        def project(counts):
            out = {}
            for key, value in counts.items():
                out[key[:6]] = out.get(key[:6], 0) + value
            return out

        tvd = total_variation_distance(
            project(counts_original), project(counts_compiled)
        )
        assert tvd < 0.08

    def test_regular_circuit_unaffected_by_flag(self):
        a = caqr_compile(bv_circuit(5), mode="max_reuse", auto_commuting=True)
        b = caqr_compile(bv_circuit(5), mode="max_reuse", auto_commuting=False)
        assert a.metrics.qubits_used == b.metrics.qubits_used == 2
