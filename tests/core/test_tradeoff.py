"""Tests for the tradeoff explorer and reuse-benefit identifier."""

import pytest

from repro.core import (
    assess_reuse_benefit,
    select_point,
    sweep_commuting,
    sweep_regular,
)
from repro.exceptions import ReuseError
from repro.hardware import ibm_mumbai
from repro.workloads import bv_circuit, random_graph


class TestSweepRegular:
    def test_logical_only_sweep(self):
        points = sweep_regular(bv_circuit(6))
        assert points[0].qubits == 6
        assert points[-1].qubits == 2
        assert all(p.compiled_depth is None for p in points)

    def test_hardware_mapped_sweep(self):
        backend = ibm_mumbai()
        points = sweep_regular(bv_circuit(5), backend=backend)
        assert all(p.compiled_depth is not None for p in points)
        assert all(p.swap_count is not None for p in points)

    def test_sweep_commuting(self):
        points = sweep_commuting(random_graph(8, 0.3, seed=1))
        assert points[0].qubits == 8
        assert points[-1].qubits < 8


class TestSelect:
    def _points(self):
        return sweep_regular(bv_circuit(6), backend=ibm_mumbai())

    def test_baseline(self):
        points = self._points()
        assert select_point(points, "baseline") is points[0]

    def test_max_reuse(self):
        points = self._points()
        assert select_point(points, "max_reuse").qubits == 2

    def test_min_depth(self):
        points = self._points()
        chosen = select_point(points, "min_depth")
        assert chosen.compiled_depth == min(p.compiled_depth for p in points)

    def test_min_swap(self):
        points = self._points()
        chosen = select_point(points, "min_swap")
        assert chosen.swap_count == min(p.swap_count for p in points)

    def test_min_swap_needs_compiled_sweep(self):
        logical_points = sweep_regular(bv_circuit(4))
        with pytest.raises(ReuseError):
            select_point(logical_points, "min_swap")

    def test_unknown_mode(self):
        with pytest.raises(ReuseError):
            select_point(self._points(), "fastest")

    def test_empty_rejected(self):
        with pytest.raises(ReuseError):
            select_point([], "baseline")


class TestBenefitIdentifier:
    def test_bv_is_beneficial(self):
        points = sweep_regular(bv_circuit(10))
        report = assess_reuse_benefit(points)
        assert report.beneficial
        assert report.minimum_qubits == 2
        assert report.saving_fraction == pytest.approx(0.8)

    def test_dense_qaoa_not_beneficial(self):
        """A complete interaction graph admits no reuse at all."""
        import networkx as nx

        points = sweep_commuting(nx.complete_graph(5))
        report = assess_reuse_benefit(points)
        assert not report.beneficial
        assert report.saving_fraction == 0.0

    def test_knee_within_tolerance(self):
        points = sweep_regular(bv_circuit(8))
        report = assess_reuse_benefit(points, knee_tolerance=0.5)
        assert report.knee_depth_overhead <= 0.5
        assert report.knee_qubits <= report.original_qubits
