"""Tests for the event-driven lifetime scheduler (deep commuting reuse)."""

import networkx as nx
import pytest

from repro.core import (
    ReusePair,
    alive_profile,
    best_birth_order,
    lifetime_minimum_qubits,
    lifetime_schedule,
    materialize_commuting,
    vertex_separation_order,
)
from repro.exceptions import ReuseError
from repro.sim import run_counts
from repro.workloads import power_law_graph, qaoa_maxcut_circuit, random_graph


def path_graph(n):
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def multi_star(hubs, leaves):
    """Every leaf attached to every hub; hubs interconnected."""
    graph = nx.Graph()
    n = hubs + leaves
    graph.add_nodes_from(range(n))
    for h in range(hubs):
        for other in range(h + 1, hubs):
            graph.add_edge(h, other)
        for leaf in range(hubs, n):
            graph.add_edge(h, leaf)
    return graph


class TestOrders:
    def test_vsep_order_is_permutation(self):
        graph = random_graph(12, 0.3, seed=1)
        order = vertex_separation_order(graph)
        assert sorted(order) == list(range(12))

    def test_path_alive_profile_is_constant_two(self):
        graph = path_graph(8)
        order = vertex_separation_order(graph)
        assert max(alive_profile(graph, order)) == 2

    def test_alive_profile_counts_birth_step(self):
        """A vertex born after all neighbours still occupies a wire."""
        graph = multi_star(2, 4)
        order = [0, 1] + list(range(2, 6))  # hubs first
        profile = alive_profile(graph, order)
        # after both hubs born, each leaf birth holds hubs + itself
        assert max(profile) == 3

    def test_best_order_beats_single_heuristics_on_multi_star(self):
        graph = multi_star(5, 30)
        order = best_birth_order(graph)
        assert max(alive_profile(graph, order)) <= 7


class TestLifetimeSchedule:
    def test_full_budget_means_no_pairs(self):
        graph = random_graph(8, 0.4, seed=2)
        pairs, schedule = lifetime_schedule(graph, 8)
        assert pairs == []
        total = sum(len(layer) for layer in schedule.layers)
        assert total == graph.number_of_edges()

    def test_all_gates_scheduled_with_reuse(self):
        graph = power_law_graph(16, 0.3, seed=3)
        floor = lifetime_minimum_qubits(graph)
        pairs, schedule = lifetime_schedule(graph, floor)
        total = sum(len(layer) for layer in schedule.layers)
        assert total == graph.number_of_edges()
        assert len(pairs) == 16 - floor

    def test_layers_are_matchings(self):
        graph = random_graph(10, 0.4, seed=4)
        _, schedule = lifetime_schedule(graph, 6)
        for layer in schedule.layers:
            qubits = [q for gate in layer for q in gate]
            assert len(qubits) == len(set(qubits))

    def test_infeasible_budget_raises(self):
        graph = nx.complete_graph(5)
        with pytest.raises(ReuseError):
            lifetime_schedule(graph, 3)

    def test_bad_order_rejected(self):
        graph = path_graph(4)
        with pytest.raises(ReuseError):
            lifetime_schedule(graph, 2, order=[0, 1, 2, 2])

    def test_path_reaches_two_wires(self):
        graph = path_graph(10)
        pairs, _ = lifetime_schedule(graph, 2)
        assert len(pairs) == 8

    def test_measure_fires_before_target_gates(self):
        graph = path_graph(6)
        pairs, schedule = lifetime_schedule(graph, 2)
        for pair in pairs:
            fire = schedule.measure_after_layer[pair]
            for layer_index, layer in enumerate(schedule.layers):
                if any(pair.target in gate for gate in layer):
                    assert layer_index > fire


class TestFloors:
    def test_multi_star_floor_is_hubs_plus_one(self):
        graph = multi_star(6, 40)
        floor = lifetime_minimum_qubits(graph)
        assert floor <= 8  # 6 hubs + leaf slot (+1 heuristic slack)

    def test_power_law_compresses_much_more_than_random(self):
        """The paper's Fig. 3 contrast at 64 qubits, density 0.30."""
        pl = power_law_graph(64, 0.3, seed=7)
        rnd = random_graph(64, 0.3, seed=7)
        pl_floor = lifetime_minimum_qubits(pl)
        rnd_floor = lifetime_minimum_qubits(rnd)
        assert pl_floor <= 16  # > 75% saving
        assert pl_floor < rnd_floor - 10

    def test_floor_schedule_is_feasible(self):
        graph = power_law_graph(32, 0.3, seed=8)
        floor = lifetime_minimum_qubits(graph)
        pairs, schedule = lifetime_schedule(graph, floor)
        circuit = materialize_commuting(graph, pairs, schedule)
        assert circuit.num_qubits == 32 - len(pairs) <= floor


class TestSemantics:
    def test_lifetime_circuit_matches_plain_qaoa(self):
        graph = path_graph(5)
        pairs, schedule = lifetime_schedule(graph, 2)
        reused = materialize_commuting(graph, pairs, schedule)
        assert reused.num_qubits == 2
        plain = qaoa_maxcut_circuit(graph)
        counts_plain = run_counts(plain, shots=6000, seed=9)
        counts_reused = run_counts(reused, shots=6000, seed=9)
        for key in set(counts_plain) | set(counts_reused):
            assert abs(
                counts_plain.get(key, 0) - counts_reused.get(key, 0)
            ) < 450
