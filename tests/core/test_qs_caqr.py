"""Tests for the QS-CaQR regular driver (paper Section 3.2.1)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.exceptions import ReuseError
from repro.sim import run_counts
from repro.workloads import (
    bv_circuit,
    bv_expected_bitstring,
    four_mod5,
    rd32,
    system_9,
    xor5,
)


def marginal(counts, num_bits):
    """Project counts onto the first *num_bits* classical bits.

    Reuse of unmeasured qubits (e.g. BV's ancilla) appends garbage
    clbits; the application answer lives in the original bits.
    """
    out = {}
    for key, value in counts.items():
        prefix = key[:num_bits]
        out[prefix] = out.get(prefix, 0) + value
    return out


class TestBVHeadline:
    """Paper Section 1: n-qubit BV always compresses to exactly 2 qubits."""

    @pytest.mark.parametrize("n", [3, 5, 8, 10])
    def test_bv_floor_is_two(self, n):
        assert QSCaQR().minimum_qubits(bv_circuit(n)) == 2

    def test_bv5_saving_is_60_percent(self):
        """The abstract's 60% resource saving on BV (5 -> 2)."""
        result = QSCaQR().reduce_to(bv_circuit(5), 2)
        assert result.feasible
        saving = 1 - result.qubits / 5
        assert saving == pytest.approx(0.6)

    def test_reduced_bv_still_correct(self):
        result = QSCaQR().reduce_to(bv_circuit(6, secret=[1, 0, 1, 1, 0]), 2)
        counts = run_counts(result.circuit, shots=150, seed=3)
        assert marginal(counts, 5) == {bv_expected_bitstring(6, [1, 0, 1, 1, 0]): 150}


class TestReduceTo:
    def test_already_small_enough(self):
        circuit = bv_circuit(3)
        result = QSCaQR().reduce_to(circuit, 5)
        assert result.qubits == 3
        assert result.pairs == []

    def test_infeasible_reports_false(self):
        result = QSCaQR().reduce_to(bv_circuit(5), 1)
        assert not result.feasible
        assert result.qubits == 2  # got as far as possible

    def test_bad_limit_rejected(self):
        with pytest.raises(ReuseError):
            QSCaQR().reduce_to(bv_circuit(3), 0)

    def test_exact_intermediate_budget(self):
        result = QSCaQR().reduce_to(bv_circuit(6), 4)
        assert result.feasible
        assert result.qubits == 4
        assert len(result.pairs) == 2

    def test_bad_objective_rejected(self):
        with pytest.raises(ReuseError):
            QSCaQR(objective="spin")


class TestSweep:
    def test_sweep_covers_every_count(self):
        points = QSCaQR().sweep(bv_circuit(5))
        assert [p.qubits for p in points] == [5, 4, 3, 2]

    def test_depth_monotonically_nonincreasing_in_qubits(self):
        """Fewer qubits -> same or larger logical depth (paper Fig. 3/13)."""
        points = QSCaQR().sweep(bv_circuit(8))
        depths = [p.depth for p in points]
        assert all(b >= a for a, b in zip(depths, depths[1:]))

    def test_first_point_is_input(self):
        circuit = bv_circuit(4)
        points = QSCaQR().sweep(circuit)
        assert points[0].circuit is not circuit or points[0].qubits == 4
        assert points[0].pairs == []

    def test_semantics_preserved_at_every_point(self):
        secret = [1, 1, 0, 1]
        points = QSCaQR().sweep(bv_circuit(5, secret=secret))
        expected = bv_expected_bitstring(5, secret)
        for point in points:
            counts = run_counts(point.circuit, shots=100, seed=9)
            assert marginal(counts, 4) == {expected: 100}, (
                f"broken at {point.qubits} qubits"
            )


class TestRevlibBenchmarks:
    """The arithmetic benchmarks also shrink and stay correct."""

    @pytest.mark.parametrize("builder", [rd32, four_mod5, xor5, system_9])
    def test_reuse_preserves_deterministic_output(self, builder):
        circuit = builder()
        baseline = run_counts(circuit, shots=64, seed=11)
        expected = next(iter(baseline))
        points = QSCaQR().sweep(circuit)
        final = points[-1]
        counts = run_counts(final.circuit, shots=64, seed=12)
        assert marginal(counts, circuit.num_clbits) == {expected: 64}

    def test_xor5_saves_qubits(self):
        """XOR_5 is a BV-like star: large savings expected."""
        assert QSCaQR().minimum_qubits(xor5()) == 2


class TestDurationObjective:
    def test_duration_objective_runs(self):
        points = QSCaQR(objective="duration").sweep(bv_circuit(5))
        assert points[-1].qubits == 2
        durations = [p.duration_dt for p in points]
        assert all(d > 0 for d in durations)

    def test_builtin_reset_style_longer(self):
        cif = QSCaQR(reset_style="cif").reduce_to(bv_circuit(5), 2)
        builtin = QSCaQR(reset_style="builtin").reduce_to(bv_circuit(5), 2)
        assert builtin.duration_dt > cif.duration_dt


class TestLazyDuration:
    """Depth-objective sweeps must not pay for duration scheduling."""

    def _counting(self, monkeypatch):
        import repro.core.qs_caqr as mod

        calls = {"n": 0}
        real = mod.circuit_duration_dt

        def counted(circuit):
            calls["n"] += 1
            return real(circuit)

        monkeypatch.setattr(mod, "circuit_duration_dt", counted)
        return calls

    def test_depth_sweep_never_schedules(self, monkeypatch):
        calls = self._counting(monkeypatch)
        points = QSCaQR(objective="depth").sweep(bv_circuit(5))
        assert calls["n"] == 0
        # first access computes (and caches) it lazily
        value = points[-1].duration_dt
        assert calls["n"] == 1 and value > 0
        assert points[-1].duration_dt == value
        assert calls["n"] == 1

    def test_depth_reference_engine_never_schedules(self, monkeypatch):
        calls = self._counting(monkeypatch)
        QSCaQR(objective="depth", incremental=False).sweep(bv_circuit(5))
        assert calls["n"] == 0

    def test_duration_sweep_schedules_eagerly(self, monkeypatch):
        calls = self._counting(monkeypatch)
        points = QSCaQR(objective="duration").sweep(bv_circuit(5))
        assert calls["n"] == len(points)
        before = calls["n"]
        assert all(p.duration_dt > 0 for p in points)
        assert calls["n"] == before  # already cached

    def test_lazy_value_matches_eager(self):
        depth_points = QSCaQR(objective="depth").sweep(bv_circuit(5))
        duration_points = QSCaQR(objective="duration").sweep(bv_circuit(5))
        by_width = {p.qubits: p.duration_dt for p in duration_points}
        for point in depth_points:
            if point.qubits in by_width and point.pairs == []:
                assert point.duration_dt == by_width[point.qubits]


class TestEngineKnobs:
    def test_stats_populated_by_incremental_sweep(self):
        compiler = QSCaQR()
        compiler.sweep(bv_circuit(5))
        counters = compiler.stats.counters
        assert counters["steps"] == 3
        assert counters["evaluations"] > 0
        assert counters["mask_updates"] > 0
        assert compiler.stats.timers["score"] >= 0.0
        assert compiler.stats.timers["lookahead"] >= 0.0
        assert compiler.stats.timers["apply"] >= 0.0

    def test_unknown_objective_rejected(self):
        with pytest.raises(ReuseError):
            QSCaQR(objective="fidelity")
