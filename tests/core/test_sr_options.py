"""Tests for SR-CaQR's selection options (objectives, QS assistance)."""

import pytest

from repro.core import SRCaQR, SRCaQRCommuting
from repro.exceptions import ReuseError
from repro.hardware import ibm_mumbai
from repro.sim import estimated_success_probability
from repro.workloads import multiply_13, random_graph, regular_benchmark


class TestObjectives:
    def test_unknown_objective_rejected(self):
        backend = ibm_mumbai()
        with pytest.raises(ReuseError):
            SRCaQR(backend).run(regular_benchmark("xor_5"), objective="vibes")

    def test_esp_objective_not_worse_on_esp(self):
        backend = ibm_mumbai()
        circuit = multiply_13()
        by_swaps = SRCaQR(backend).run(circuit, objective="swaps")
        by_esp = SRCaQR(backend).run(circuit, objective="esp")
        esp_of = lambda r: estimated_success_probability(
            r.circuit, backend.calibration
        )
        assert esp_of(by_esp) >= esp_of(by_swaps) - 1e-12

    def test_swaps_objective_not_worse_on_swaps(self):
        backend = ibm_mumbai()
        circuit = multiply_13()
        by_swaps = SRCaQR(backend).run(circuit, objective="swaps")
        by_esp = SRCaQR(backend).run(circuit, objective="esp")
        assert by_swaps.swap_count <= by_esp.swap_count


class TestQSAssist:
    def test_assist_never_hurts_swaps(self):
        backend = ibm_mumbai()
        circuit = multiply_13()
        with_assist = SRCaQR(backend).run(circuit, qs_assist=True)
        without = SRCaQR(backend).run(circuit, qs_assist=False)
        assert with_assist.swap_count <= without.swap_count

    def test_assist_skipped_for_dynamic_input(self):
        """A circuit that already contains reuse ops is routed as-is."""
        from repro.core import QSCaQR
        from repro.workloads import bv_circuit

        backend = ibm_mumbai()
        reused = QSCaQR().reduce_to(bv_circuit(6), 3).circuit
        assert reused.has_dynamic_operations()
        result = SRCaQR(backend).run(reused)  # must not raise
        assert result.qubits_used <= backend.num_qubits

    def test_trials_one_still_valid(self):
        backend = ibm_mumbai()
        result = SRCaQR(backend).run(
            regular_benchmark("xor_5"), trials=1, qs_assist=False
        )
        for instruction in result.circuit.data:
            if len(instruction.qubits) == 2 and not instruction.is_directive():
                assert backend.coupling.are_adjacent(*instruction.qubits)


class TestCommutingObjectives:
    def test_unknown_objective_rejected(self):
        backend = ibm_mumbai()
        with pytest.raises(ReuseError):
            SRCaQRCommuting(backend).run(
                random_graph(6, 0.3, seed=1), objective="vibes"
            )

    def test_esp_objective_runs(self):
        backend = ibm_mumbai()
        result = SRCaQRCommuting(backend).run(
            random_graph(8, 0.3, seed=2), objective="esp"
        )
        assert result.circuit.count_ops()["rzz"] >= 1
