"""Tests for the one-sweep lifetime compiler for regular circuits."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.core.lifetime_regular import (
    greedy_gate_order,
    lifetime_compile_regular,
)
from repro.exceptions import ReuseError
from repro.sim import assert_equivalent, run_counts
from repro.workloads import (
    bv_circuit,
    cc_circuit,
    ghz_measured,
    multiply_13,
    system_9,
    xor5,
)


class TestGateOrder:
    def test_order_is_permutation(self):
        circuit = bv_circuit(6)
        order = greedy_gate_order(circuit)
        assert sorted(order) == list(range(len(circuit.data)))

    def test_order_respects_dependencies(self):
        circuit = bv_circuit(5)
        order = greedy_gate_order(circuit)
        position = {index: i for i, index in enumerate(order)}
        # each qubit's own instructions must stay in wire order
        table = circuit.qubit_instruction_indices()
        for q, indices in table.items():
            for a, b in zip(indices, indices[1:]):
                assert position[a] < position[b], (q, a, b)


class TestCompile:
    @pytest.mark.parametrize("n", [4, 6, 10])
    def test_bv_reaches_two_wires(self, n):
        result = lifetime_compile_regular(bv_circuit(n))
        assert result.qubits == 2
        assert result.reuse_count == n - 2

    def test_bv_answer_preserved(self):
        original = bv_circuit(6, secret=[1, 0, 1, 1, 0])
        result = lifetime_compile_regular(original)
        assert_equivalent(original, result.circuit, width=5, shots=400)

    @pytest.mark.parametrize(
        "builder", [xor5, system_9, multiply_13, lambda: cc_circuit(10)]
    )
    def test_matches_or_beats_pair_greedy(self, builder):
        circuit = builder()
        sweep_floor = QSCaQR().minimum_qubits(circuit)
        result = lifetime_compile_regular(circuit)
        assert result.qubits <= sweep_floor

    @pytest.mark.parametrize("builder", [xor5, system_9])
    def test_deterministic_outputs_preserved(self, builder):
        circuit = builder()
        expected = next(iter(run_counts(circuit, shots=32, seed=1)))
        result = lifetime_compile_regular(circuit)
        counts = run_counts(result.circuit, shots=32, seed=2)
        projected = {key[: circuit.num_clbits] for key in counts}
        assert projected == {expected}

    def test_ghz_folds_to_two(self):
        result = lifetime_compile_regular(ghz_measured(6))
        assert result.qubits == 2
        counts = run_counts(result.circuit, shots=2000, seed=3)
        projected = {}
        for key, value in counts.items():
            projected[key[:6]] = projected.get(key[:6], 0) + value
        assert set(projected) == {"000000", "111111"}

    def test_builtin_reset_style(self):
        result = lifetime_compile_regular(bv_circuit(5), reset_style="builtin")
        assert "reset" in result.circuit.count_ops()

    def test_bad_reset_style(self):
        with pytest.raises(ReuseError):
            lifetime_compile_regular(bv_circuit(3), reset_style="nope")

    def test_explicit_order_must_be_permutation(self):
        with pytest.raises(ReuseError):
            lifetime_compile_regular(bv_circuit(3), order=[0, 0, 1])

    def test_no_reuse_needed_when_all_live(self):
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        circuit.measure_all()
        result = lifetime_compile_regular(circuit)
        assert result.qubits == 3
        assert result.reuse_count == 0
