"""Tests for reuse Conditions 1 and 2."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import (
    ReuseAnalysis,
    ReusePair,
    condition1_ok,
    condition2_ok,
    is_valid_pair,
    valid_reuse_pairs,
)
from repro.workloads import bv_circuit


class TestReusePair:
    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            ReusePair(1, 1)

    def test_str(self):
        assert str(ReusePair(0, 3)) == "(q0 -> q3)"


class TestCondition1:
    def test_shared_gate_blocks(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        assert not condition1_ok(circuit, 0, 1)
        assert not condition1_ok(circuit, 1, 0)

    def test_disjoint_qubits_pass(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.h(2)
        assert condition1_ok(circuit, 0, 2)

    def test_shared_barrier_blocks(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier(0, 1)
        circuit.h(1)
        assert not condition1_ok(circuit, 0, 1)


class TestCondition2:
    def test_paper_fig7(self):
        """Fig. 7: (q1 -> q4) invalid because g(q3,q1) depends on g(q4,q2)."""
        circuit = QuantumCircuit(4)
        q1, q2, q3, q4 = 0, 1, 2, 3
        circuit.cx(q4, q2)
        circuit.cx(q2, q3)
        circuit.cx(q3, q1)
        assert condition1_ok(circuit, q1, q4)  # no shared gate
        assert not condition2_ok(circuit, q1, q4)  # but cyclic
        assert not is_valid_pair(circuit, q1, q4)
        # the reverse direction is fine: q4 finishes before q1 starts
        assert condition2_ok(circuit, q4, q1)
        assert is_valid_pair(circuit, q4, q1)

    def test_forward_dependency_allows(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        # q0's gate precedes q2's gate, so (q0 -> q2) is valid
        assert is_valid_pair(circuit, 0, 2)
        # and (q2 -> q0) is not: q0's gate depends on nothing of q2, but
        # q2's gate depends on q0's -> reusing q2 for q0 is a cycle
        assert not condition2_ok(circuit, 2, 0)


class TestValidPairs:
    def test_bv_structure(self):
        """In BV, earlier data qubits can be reused by later ones."""
        circuit = bv_circuit(4)  # data qubits 0,1,2; ancilla 3
        pairs = set((p.source, p.target) for p in valid_reuse_pairs(circuit))
        assert (0, 1) in pairs
        assert (0, 2) in pairs
        assert (1, 2) in pairs
        # later data qubits cannot be reused by earlier ones (ancilla chain)
        assert (1, 0) not in pairs
        assert (2, 0) not in pairs
        # the ancilla interacts with everyone: never reusable
        assert not any(3 in pair for pair in pairs)

    def test_unused_qubits_excluded(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        analysis = ReuseAnalysis(circuit)
        assert not analysis.is_valid(ReusePair(0, 2))
        assert not analysis.is_valid(ReusePair(2, 0))

    def test_parallel_qubits_reusable_both_ways(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        pairs = set((p.source, p.target) for p in valid_reuse_pairs(circuit))
        assert (0, 2) in pairs and (2, 0) in pairs
        assert (1, 3) in pairs and (3, 1) in pairs

    def test_no_pairs_in_fully_connected_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        assert valid_reuse_pairs(circuit) == []
