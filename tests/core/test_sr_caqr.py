"""Tests for the SR-CaQR router (paper Section 3.3)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import SRCaQR
from repro.hardware import CouplingMap, generic_backend, ibm_mumbai, line
from repro.sim import run_counts
from repro.workloads import bv_circuit, bv_expected_bitstring, xor5


def assert_compliant(circuit, coupling):
    for instruction in circuit.data:
        if len(instruction.qubits) == 2 and not instruction.is_directive():
            assert coupling.are_adjacent(*instruction.qubits), str(instruction)


def fig4_backend():
    """The paper's Fig. 4(a) 5-qubit coupling: a degree-3 'T' shape."""
    coupling = CouplingMap(5, [(0, 1), (1, 2), (1, 3), (3, 4)])
    return generic_backend(coupling, seed=3)


class TestBasics:
    def test_trivial_circuit(self):
        backend = generic_backend(line(3), seed=1)
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        result = SRCaQR(backend).run(circuit)
        assert result.swap_count == 0
        assert_compliant(result.circuit, backend.coupling)

    def test_compliance_on_mumbai(self):
        backend = ibm_mumbai()
        result = SRCaQR(backend).run(bv_circuit(10))
        assert_compliant(result.circuit, backend.coupling)

    def test_all_original_gates_present(self):
        backend = ibm_mumbai()
        circuit = bv_circuit(6)
        result = SRCaQR(backend).run(circuit)
        original = circuit.count_ops()
        compiled = result.circuit.count_ops()
        assert compiled["cx"] >= original["cx"]
        assert compiled["measure"] >= original["measure"]

    def test_metrics_consistent(self):
        backend = ibm_mumbai()
        result = SRCaQR(backend).run(bv_circuit(8))
        assert result.swap_count == result.circuit.swap_count()
        assert result.depth == result.circuit.depth()
        assert result.qubits_used <= backend.num_qubits


class TestSemantics:
    @pytest.mark.parametrize("secret", [[1, 1, 1, 1], [1, 0, 1, 0]])
    def test_bv_answer_preserved(self, secret):
        backend = ibm_mumbai()
        circuit = bv_circuit(5, secret=secret)
        result = SRCaQR(backend).run(circuit)
        counts = run_counts(result.circuit.compacted(), shots=150, seed=4)
        expected = bv_expected_bitstring(5, secret)
        projected = {}
        for key, value in counts.items():
            projected[key[:4]] = projected.get(key[:4], 0) + value
        assert projected == {expected: 150}

    def test_xor5_answer_preserved(self):
        backend = ibm_mumbai()
        circuit = xor5()
        reference = next(iter(run_counts(circuit, shots=32, seed=5)))
        result = SRCaQR(backend).run(circuit)
        counts = run_counts(result.circuit.compacted(), shots=32, seed=6)
        assert {k[:5] for k in counts} == {reference}


class TestSwapReduction:
    def test_bv5_on_fig4_needs_no_swap(self):
        """Paper Fig. 4/5: the 5-qubit BV star does not fit the degree-3
        coupling, but with one qubit reuse it maps SWAP-free."""
        backend = fig4_backend()
        result = SRCaQR(backend).run(bv_circuit(5))
        assert result.swap_count == 0
        assert result.reuse_count >= 1
        assert_compliant(result.circuit, backend.coupling)

    def test_reuse_reduces_qubit_usage(self):
        backend = ibm_mumbai()
        result = SRCaQR(backend).run(bv_circuit(10))
        # BV_10 needs 10 wires without reuse; SR frees data qubits early
        assert result.qubits_used < 10
        assert result.reuse_count >= 1

    def test_wider_than_device_compiles(self):
        """SR-CaQR can run a circuit wider than the device via reuse."""
        coupling = line(3)
        backend = generic_backend(coupling, seed=7)
        circuit = bv_circuit(6)  # 6 logical qubits on a 3-qubit device
        result = SRCaQR(backend).run(circuit)
        assert_compliant(result.circuit, coupling)
        counts = run_counts(result.circuit.compacted(), shots=100, seed=8)
        projected = {}
        for key, value in counts.items():
            projected[key[:5]] = projected.get(key[:5], 0) + value
        assert projected == {"11111": 100}


class TestNoiseAwareness:
    def test_noise_aware_flag_changes_nothing_structural(self):
        backend = ibm_mumbai()
        aware = SRCaQR(backend, noise_aware=True).run(bv_circuit(6))
        blind = SRCaQR(backend, noise_aware=False).run(bv_circuit(6))
        # both must be valid; counts of logical ops identical
        assert aware.circuit.count_ops()["cx"] == blind.circuit.count_ops()["cx"]

    def test_reset_styles(self):
        backend = fig4_backend()
        cif = SRCaQR(backend, reset_style="cif").run(bv_circuit(5))
        builtin = SRCaQR(backend, reset_style="builtin").run(bv_circuit(5))
        assert any(i.condition is not None for i in cif.circuit.data)
        assert "reset" in builtin.circuit.count_ops()
