"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main
from repro.circuit import parse_qasm, to_qasm
from repro.workloads import bv_circuit


@pytest.fixture
def bv_qasm(tmp_path):
    path = tmp_path / "bv.qasm"
    path.write_text(to_qasm(bv_circuit(5)))
    return str(path)


class TestCompileCommand:
    def test_compile_from_qasm_file(self, bv_qasm, capsys):
        assert main(["compile", bv_qasm, "--mode", "max_reuse"]) == 0
        out = capsys.readouterr().out
        assert "qubits used" in out
        assert "60%" in out  # BV_5 compresses 5 -> 2

    def test_compile_benchmark_name(self, capsys):
        assert main(["compile", "xor_5", "--mode", "max_reuse"]) == 0
        assert "reuse resets" in capsys.readouterr().out

    def test_compile_writes_output(self, bv_qasm, tmp_path, capsys):
        output = str(tmp_path / "out.qasm")
        assert main([
            "compile", bv_qasm, "--mode", "max_reuse", "--output", output
        ]) == 0
        compiled = parse_qasm(open(output).read())
        assert compiled.num_qubits == 2

    def test_compile_draw(self, capsys):
        assert main(["compile", "bv_5", "--mode", "max_reuse", "--draw"]) == 0
        assert "q0:" in capsys.readouterr().out

    def test_min_swap_needs_backend(self, capsys):
        assert main(["compile", "bv_5", "--mode", "min_swap"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_min_swap_with_mumbai(self, capsys):
        assert main([
            "compile", "bv_5", "--mode", "min_swap", "--backend", "mumbai"
        ]) == 0

    def test_missing_file_reports_error(self, capsys):
        assert main(["compile", "missing.qasm"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_sweep(self, capsys):
        assert main(["sweep", "bv_5"]) == 0
        out = capsys.readouterr().out
        assert "tradeoff sweep" in out
        assert "reuse beneficial: True" in out

    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "bv_10" in out
        assert "qaoa" in out

    def test_backend_json_roundtrip(self, tmp_path, capsys):
        from repro.hardware import backend_to_json, ibm_mumbai

        path = tmp_path / "backend.json"
        path.write_text(backend_to_json(ibm_mumbai()))
        assert main([
            "compile", "xor_5", "--mode", "min_swap", "--backend", str(path)
        ]) == 0


class TestServiceCommands:
    """CLI paths that talk to the compile service (local dir or server)."""

    @pytest.fixture
    def server(self):
        from repro.service import CompileService, start_server_thread

        handle = start_server_thread(service=CompileService())
        yield handle
        handle.stop()

    def test_compile_through_server(self, server, capsys):
        assert main(["compile", "bv_5", "--server", server.url]) == 0
        assert "served from cache  False" in capsys.readouterr().out
        assert main(["compile", "bv_5", "--server", server.url]) == 0
        assert "served from cache  True" in capsys.readouterr().out

    def test_cache_stats_against_server(self, server, capsys):
        main(["compile", "bv_5", "--server", server.url])
        capsys.readouterr()
        assert main(["cache", "stats", "--server", server.url]) == 0
        out = capsys.readouterr().out
        assert "compile service" in out
        assert "http_requests" in out

    def test_cache_clear_key_against_server(self, server, capsys):
        from repro.service.service import CompileRequest

        main(["compile", "bv_5", "--server", server.url])
        fingerprint = CompileRequest(target=bv_circuit(5)).fingerprint()
        capsys.readouterr()
        assert main([
            "cache", "clear", "--key", fingerprint, "--server", server.url
        ]) == 0
        assert f"invalidated {fingerprint}" in capsys.readouterr().out
        assert main([
            "cache", "clear", "--key", fingerprint, "--server", server.url
        ]) == 0
        assert "no entry" in capsys.readouterr().out

    def test_cache_clear_key_on_disk(self, tmp_path, capsys):
        from repro.service.service import CompileRequest

        assert main(["compile", "bv_5", "--cache-dir", str(tmp_path)]) == 0
        fingerprint = CompileRequest(target=bv_circuit(5)).fingerprint()
        capsys.readouterr()
        assert main([
            "cache", "clear", "--key", fingerprint, "--dir", str(tmp_path)
        ]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert list(tmp_path.rglob("*.json")) == []

    def test_cache_stats_lists_shards(self, tmp_path, capsys):
        assert main(["compile", "bv_5", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shard nobackend" in out

    def test_serve_parses_and_connection_refused_is_an_error(self, capsys):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-concurrency", "4"]
        )
        assert args.port == 0 and args.max_concurrency == 4
        # a dead server is a clean CLI error, not a traceback
        assert main([
            "compile", "bv_5", "--server", "http://127.0.0.1:9"
        ]) == 1
        assert "error:" in capsys.readouterr().err
