"""Tests for max-cut utilities."""

import networkx as nx
import pytest

from repro.apps import best_cut_brute_force, cut_value, expected_cut_from_counts
from repro.exceptions import WorkloadError


def triangle():
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2)])
    return graph


class TestCutValue:
    def test_uniform_assignment_cuts_nothing(self):
        assert cut_value(triangle(), "000") == 0
        assert cut_value(triangle(), "111") == 0

    def test_triangle_best_is_two(self):
        assert cut_value(triangle(), "011") == 2
        assert cut_value(triangle(), "100") == 2

    def test_extra_bits_ignored(self):
        assert cut_value(triangle(), "01101") == 2

    def test_short_assignment_rejected(self):
        with pytest.raises(WorkloadError):
            cut_value(triangle(), "01")


class TestExpectedCut:
    def test_weighted_average(self):
        counts = {"000": 50, "011": 50}
        assert expected_cut_from_counts(triangle(), counts) == pytest.approx(1.0)

    def test_empty_counts_rejected(self):
        with pytest.raises(WorkloadError):
            expected_cut_from_counts(triangle(), {})


class TestBruteForce:
    def test_triangle(self):
        assert best_cut_brute_force(triangle()) == 2

    def test_path(self):
        graph = nx.path_graph(4)
        assert best_cut_brute_force(graph) == 3

    def test_complete_bipartite(self):
        graph = nx.complete_bipartite_graph(3, 3)
        assert best_cut_brute_force(graph) == 9

    def test_size_cap(self):
        with pytest.raises(WorkloadError):
            best_cut_brute_force(nx.path_graph(25))
