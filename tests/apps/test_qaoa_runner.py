"""Tests for the end-to-end QAOA runner."""

import networkx as nx
import pytest

from repro.apps import best_cut_brute_force, run_qaoa
from repro.apps.qaoa_runner import baseline_factory, sr_caqr_factory
from repro.exceptions import WorkloadError
from repro.hardware import ibm_mumbai
from repro.sim import NoiseModel
from repro.workloads import random_graph


def small_graph():
    return random_graph(6, 0.4, seed=9)


class TestRunQAOA:
    def test_trace_recorded(self):
        graph = small_graph()
        trace = run_qaoa(
            graph, baseline_factory(graph), shots=128, max_iterations=8
        )
        assert trace.evaluations >= 3
        assert trace.best_energy == min(trace.energies)

    def test_energy_bounded_by_max_cut(self):
        graph = small_graph()
        best = best_cut_brute_force(graph)
        trace = run_qaoa(
            graph, baseline_factory(graph), shots=256, max_iterations=10
        )
        assert -trace.best_energy <= best + 1e-9

    def test_optimisation_improves_over_first_evaluation(self):
        graph = small_graph()
        trace = run_qaoa(
            graph, baseline_factory(graph), shots=256, max_iterations=15
        )
        assert trace.best_energy <= trace.energies[0]

    def test_tiny_graph_rejected(self):
        graph = nx.Graph()
        graph.add_node(0)
        with pytest.raises(WorkloadError):
            run_qaoa(graph, baseline_factory(graph))

    def test_noisy_run_executes(self):
        graph = small_graph()
        noise = NoiseModel.uniform(two_qubit_error=0.02, readout=0.03)
        trace = run_qaoa(
            graph, baseline_factory(graph), noise=noise, shots=64, max_iterations=5
        )
        assert trace.evaluations >= 3

    def test_sr_factory_produces_narrower_circuits(self):
        graph = random_graph(8, 0.3, seed=10)
        backend = ibm_mumbai()
        factory = sr_caqr_factory(graph, backend)
        circuit, noise = factory(0.8, 0.4)
        assert circuit.num_qubits < backend.num_qubits
        assert noise is not None and not noise.is_trivial()
        trace = run_qaoa(graph, factory, shots=64, max_iterations=4)
        assert trace.evaluations >= 2

    def test_transpiled_factory_returns_noise_pair(self):
        from repro.apps import transpiled_factory

        graph = random_graph(6, 0.4, seed=11)
        backend = ibm_mumbai()
        circuit, noise = transpiled_factory(graph, backend)(0.8, 0.4)
        assert circuit.num_qubits <= backend.num_qubits
        assert noise is not None
        # noise must be remapped onto the compacted wires
        assert all(
            q < circuit.num_qubits for q in noise.readout
        )
