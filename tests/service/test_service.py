"""CompileService behaviour: hits, dedup, batching, corruption recovery."""

import threading

import pytest

from repro.compile_api import caqr_compile
from repro.exceptions import ReuseError, ServiceError
from repro.hardware import ibm_mumbai
from repro.service import (
    CompileRequest,
    CompileService,
    default_service,
    reset_default_service,
    resolve_cache,
)
from repro.service.serialization import SCHEMA_VERSION
from repro.workloads import bv_circuit, random_graph


def _report_fields(report):
    """Everything but the from_cache flag, for identity comparisons."""
    return (
        report.circuit.num_qubits,
        report.circuit.num_clbits,
        report.circuit.data,
        report.mode,
        report.metrics,
        report.baseline_metrics,
        report.reuse_beneficial,
        report.qubit_saving,
        report.route_stats,
    )


class TestSingleRequests:
    def test_miss_then_hit(self):
        service = CompileService()
        cold = service.compile(bv_circuit(6), mode="max_reuse")
        warm = service.compile(bv_circuit(6), mode="max_reuse")
        assert cold.from_cache is False
        assert warm.from_cache is True
        assert _report_fields(cold) == _report_fields(warm)
        assert service.stats.counters["misses"] == 1
        assert service.stats.counters["hits"] == 1
        assert service.stats.hit_rate == pytest.approx(0.5)

    def test_different_knobs_are_different_entries(self):
        service = CompileService()
        service.compile(bv_circuit(5), mode="max_reuse")
        report = service.compile(bv_circuit(5), mode="min_depth")
        assert report.from_cache is False
        assert service.stats.counters["misses"] == 2

    def test_engine_knobs_share_one_entry(self):
        # incremental/parallel select the engine, not the result; the
        # differential harness pins both engines identical, so they hit
        # the same cache entry
        service = CompileService()
        cold = service.compile(bv_circuit(6), incremental=True)
        warm = service.compile(bv_circuit(6), incremental=False)
        assert warm.from_cache is True
        assert _report_fields(cold) == _report_fields(warm)

    def test_served_reports_are_independent_objects(self):
        service = CompileService()
        service.compile(bv_circuit(5))
        a = service.compile(bv_circuit(5))
        b = service.compile(bv_circuit(5))
        assert a.circuit is not b.circuit
        a.circuit.data.pop()
        assert len(b.circuit.data) == len(a.circuit.data) + 1

    def test_graph_target(self):
        service = CompileService()
        graph = random_graph(8, 0.3, seed=5)
        cold = service.compile(graph, mode="max_reuse")
        warm = service.compile(graph, mode="max_reuse")
        assert warm.from_cache is True
        assert _report_fields(cold) == _report_fields(warm)

    def test_min_swap_roundtrips_route_stats(self):
        service = CompileService()
        backend = ibm_mumbai()
        cold = service.compile(bv_circuit(5), backend=backend, mode="min_swap")
        warm = service.compile(bv_circuit(5), backend=backend, mode="min_swap")
        assert cold.route_stats is not None
        assert warm.route_stats == cold.route_stats
        assert warm.baseline_metrics == cold.baseline_metrics

    def test_errors_propagate_and_are_not_cached(self):
        service = CompileService()
        for _ in range(2):
            with pytest.raises(ReuseError):
                service.compile(bv_circuit(5), mode="qubit_budget", qubit_limit=1)
        assert service.stats.counters["misses"] == 2
        assert service.stats.counters.get("stores", 0) == 0


class TestDiskPersistence:
    def test_warm_start_across_service_instances(self, tmp_path):
        first = CompileService(cache_dir=str(tmp_path))
        cold = first.compile(bv_circuit(6))
        second = CompileService(cache_dir=str(tmp_path))
        warm = second.compile(bv_circuit(6))
        assert warm.from_cache is True
        assert _report_fields(cold) == _report_fields(warm)
        assert second.stats.counters["disk_hits"] == 1

    def test_corrupt_entry_recompiles(self, tmp_path):
        service = CompileService(cache_dir=str(tmp_path))
        service.compile(bv_circuit(5))
        [entry] = list(tmp_path.rglob("*.json"))
        entry.write_text("{ not json at all")
        fresh = CompileService(cache_dir=str(tmp_path))
        report = fresh.compile(bv_circuit(5))
        assert report.from_cache is False
        assert fresh.stats.counters["corrupt_entries"] == 1
        # the bad file was dropped and replaced by the recompile
        again = CompileService(cache_dir=str(tmp_path)).compile(bv_circuit(5))
        assert again.from_cache is True

    def test_partial_write_recovers(self, tmp_path):
        service = CompileService(cache_dir=str(tmp_path))
        service.compile(bv_circuit(5))
        [entry] = list(tmp_path.rglob("*.json"))
        text = entry.read_text()
        entry.write_text(text[: len(text) // 2])  # simulate a torn write
        fresh = CompileService(cache_dir=str(tmp_path))
        report = fresh.compile(bv_circuit(5))
        assert report.from_cache is False
        assert fresh.stats.counters["corrupt_entries"] == 1

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        service = CompileService(cache_dir=str(tmp_path))
        service.compile(bv_circuit(5))
        [entry] = list(tmp_path.rglob("*.json"))
        entry.write_text(
            entry.read_text().replace(
                f'"schema": {SCHEMA_VERSION}', '"schema": 999'
            )
        )
        fresh = CompileService(cache_dir=str(tmp_path))
        assert fresh.compile(bv_circuit(5)).from_cache is False
        assert fresh.stats.counters["corrupt_entries"] == 1

    def test_clear(self, tmp_path):
        service = CompileService(cache_dir=str(tmp_path))
        service.compile(bv_circuit(5))
        service.clear()
        assert list(tmp_path.rglob("*.json")) == []
        assert service.compile(bv_circuit(5)).from_cache is False


class TestBatch:
    def test_duplicates_fold_and_order_is_preserved(self):
        service = CompileService()
        requests = [
            CompileRequest(bv_circuit(6)),
            CompileRequest(bv_circuit(7)),
            CompileRequest(bv_circuit(6)),
            CompileRequest(bv_circuit(8)),
            CompileRequest(bv_circuit(7)),
            CompileRequest(bv_circuit(6)),
        ]
        reports = service.compile_batch(requests, parallel=False)
        assert [r.circuit.num_qubits for r in reports] == [6, 7, 6, 8, 7, 6]
        assert service.stats.counters["dedup_folds"] == 3
        assert service.stats.counters["batch_unique"] == 3
        assert service.stats.counters["misses"] == 3
        # first member per fingerprint paid the compile, the rest folded
        assert [r.from_cache for r in reports] == [
            False, False, True, False, True, True,
        ]
        # folded members are field-identical to the one that compiled
        assert _report_fields(reports[0]) == _report_fields(reports[2])
        assert _report_fields(reports[1]) == _report_fields(reports[4])

    def test_warm_members_served_from_cache(self):
        service = CompileService()
        service.compile(bv_circuit(6))
        reports = service.compile_batch(
            [CompileRequest(bv_circuit(6)), CompileRequest(bv_circuit(7))],
            parallel=False,
        )
        assert [r.from_cache for r in reports] == [True, False]
        assert service.stats.counters["hits"] == 1

    def test_parallel_fanout_matches_serial(self):
        circuits = [bv_circuit(n) for n in (5, 6, 7)]
        pooled = CompileService(max_workers=2)
        serial = CompileService()
        fast = pooled.compile_batch([CompileRequest(c) for c in circuits])
        slow = serial.compile_batch(
            [CompileRequest(c) for c in circuits], parallel=False
        )
        assert pooled.stats.counters["parallel_compiles"] == 3
        assert serial.stats.counters["serial_compiles"] == 3
        for a, b in zip(fast, slow):
            assert _report_fields(a) == _report_fields(b)

    def test_batch_populates_cache_for_later_singles(self):
        service = CompileService()
        service.compile_batch([CompileRequest(bv_circuit(6))], parallel=False)
        assert service.compile(bv_circuit(6)).from_cache is True

    def test_empty_batch(self):
        assert CompileService().compile_batch([]) == []

    def test_non_request_member_rejected(self):
        with pytest.raises(ServiceError):
            CompileService().compile_batch([bv_circuit(4)])


class TestConcurrentDedup:
    def test_threads_fold_onto_one_compile(self):
        service = CompileService()
        circuit = bv_circuit(12)
        barrier = threading.Barrier(4)
        reports, errors = [], []

        def worker():
            try:
                barrier.wait(timeout=30)
                reports.append(service.compile(circuit))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(reports) == 4
        # exactly one thread compiled; the rest hit the cache or joined
        # the in-flight future
        assert service.stats.counters["misses"] == 1
        folds = service.stats.counters.get("dedup_folds", 0)
        hits = service.stats.counters.get("hits", 0)
        assert folds + hits == 3
        first = reports[0]
        for other in reports[1:]:
            assert _report_fields(other) == _report_fields(first)


class TestApiIntegration:
    def test_caqr_compile_cache_argument(self):
        service = CompileService()
        cold = caqr_compile(bv_circuit(5), cache=service)
        warm = caqr_compile(bv_circuit(5), cache=service)
        assert cold.from_cache is False
        assert warm.from_cache is True
        plain = caqr_compile(bv_circuit(5))
        assert plain.from_cache is False
        assert service.stats.counters["requests"] == 2

    def test_cache_directory_string(self, tmp_path):
        caqr_compile(bv_circuit(5), cache=str(tmp_path))
        assert list(tmp_path.rglob("*.json"))
        warm = caqr_compile(bv_circuit(5), cache=str(tmp_path))
        assert warm.from_cache is True

    def test_default_service_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CAQR_CACHE_DIR", str(tmp_path))
        reset_default_service()
        try:
            caqr_compile(bv_circuit(5), cache=True)
            assert list(tmp_path.rglob("*.json"))
            assert default_service() is default_service()
        finally:
            reset_default_service()

    def test_resolve_cache_specs(self):
        service = CompileService()
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(service) is service
        with pytest.raises(ServiceError):
            resolve_cache(42)
