"""Persistent worker pool: record protocol, respawn, serial == pooled.

The protocol tests drive ``_worker_task`` in-process (no subprocess
spawn) after resetting the worker-side decoded cache; the pool tests
spawn a real (small) pool and exercise the crash/respawn drill and the
need_record round trip; the service tests pin the contract that matters
most — a pooled ``compile_batch`` is identical to the serial path, in
both ``persistent`` and ``ephemeral`` modes.  "Identical" means every
compile output field-for-field; the stats *timer* maps riding on the
report (``route_stats``/``eval_stats``/``sim_stats``) are wall-clock
measurements and are normalised out before comparing two independent
runs (they are only pinned warm-vs-primed, where the cache replays one
run — see ``tests/property/test_cache_roundtrip.py``).
"""

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    CompileService,
    ServiceStats,
    WorkerPool,
    loads_entry,
    report_to_dict,
    resolve_workers_mode,
)
from repro.service.service import CompileRequest, _cold_compile
from repro.service.workers import (
    DEFAULT_WORKERS_MODE,
    WORKERS_MODES,
    _decode_record,
    _encode_record,
    _reset_worker_state,
    _worker_task,
)
from repro.workloads import bv_circuit


def _normalized(report_dict):
    """Report dict with the wall-clock stats timer maps emptied."""
    out = dict(report_dict)
    for field in ("route_stats", "eval_stats", "sim_stats"):
        stats = out.get(field)
        if stats is not None:
            out[field] = {**stats, "timers": {}}
    return out


def _entry_dict(text, fingerprint):
    """Decode an entry (validating its stamped key) to a normalised dict."""
    return _normalized(report_to_dict(loads_entry(text, key=fingerprint)))


class TestWorkersMode:
    def test_default_is_persistent(self, monkeypatch):
        monkeypatch.delenv("CAQR_WORKERS_MODE", raising=False)
        assert DEFAULT_WORKERS_MODE == "persistent"
        assert resolve_workers_mode(None) == "persistent"

    def test_explicit_modes(self):
        for mode in WORKERS_MODES:
            assert resolve_workers_mode(mode) == mode

    def test_env_fallback_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv("CAQR_WORKERS_MODE", "ephemeral")
        assert resolve_workers_mode(None) == "ephemeral"
        assert resolve_workers_mode("persistent") == "persistent"

    def test_unknown_mode_rejected(self, monkeypatch):
        with pytest.raises(ServiceError, match="unknown workers mode"):
            resolve_workers_mode("forked")
        monkeypatch.setenv("CAQR_WORKERS_MODE", "junk")
        with pytest.raises(ServiceError, match="unknown workers mode"):
            resolve_workers_mode(None)


class TestRecordCodec:
    def test_wire_roundtrip(self):
        request = CompileRequest(target=bv_circuit(4), mode="max_reuse", seed=3)
        kind, payload = _encode_record(request)
        assert kind == "wire"
        decoded = _decode_record((kind, payload))
        assert decoded.fingerprint() == request.fingerprint()

    def test_object_fallback_for_wire_inexpressible_targets(self):
        sentinel = object()  # not a CompileRequest: wire encoding fails
        kind, payload = _encode_record(sentinel)
        assert kind == "object"
        assert _decode_record((kind, payload)) is sentinel


class TestWorkerTaskProtocol:
    """``_worker_task`` run in this process against a reset decoded cache."""

    @pytest.fixture(autouse=True)
    def fresh_worker_state(self):
        _reset_worker_state()
        yield
        _reset_worker_state()

    def test_cold_worker_without_record_asks_for_it(self):
        request = CompileRequest(target=bv_circuit(4))
        fingerprint = request.fingerprint()
        assert _worker_task(("entry", fingerprint, None, None)) == (
            "need_record",
            fingerprint,
        )

    def test_entry_with_record_matches_serial_compile_exactly(self):
        request = CompileRequest(target=bv_circuit(4))
        fingerprint = request.fingerprint()
        record = _encode_record(request)
        status, text = _worker_task(("entry", fingerprint, record, None))
        assert status == "ok"
        serial = _cold_compile(request, allow_parallel=False)
        assert _entry_dict(text, fingerprint) == _normalized(
            report_to_dict(serial)
        ), "pooled entry must match serial up to wall-clock stats timers"

    def test_warm_lane_needs_no_record(self):
        request = CompileRequest(target=bv_circuit(4))
        fingerprint = request.fingerprint()
        record = _encode_record(request)
        _, first = _worker_task(("entry", fingerprint, record, None))
        status, second = _worker_task(("entry", fingerprint, None, None))
        assert status == "ok"
        # the warm lane skips the record ship, not the (deterministic)
        # compile — so the entries match up to wall-clock stats timers
        assert _entry_dict(second, fingerprint) == _entry_dict(
            first, fingerprint
        )

    def test_ping_answers_pid(self):
        status, pid = _worker_task(("ping", "", None, None))
        assert status == "ok"
        assert isinstance(pid, int)

    def test_unknown_kind_rejected(self):
        request = CompileRequest(target=bv_circuit(4))
        record = _encode_record(request)
        with pytest.raises(ServiceError, match="unknown worker task kind"):
            _worker_task(("transmogrify", request.fingerprint(), record, None))


class TestWorkerPool:
    def test_crash_respawn_drill(self):
        stats = ServiceStats()
        pool = WorkerPool(1, stats=stats, max_respawns=1)
        try:
            assert pool.ping()
            spawns_before = stats.counters["worker_pool_spawns"]
            with pytest.raises(ServiceError, match="worker pool died"):
                pool.run([("crash", "", None, None)])
            assert stats.counters["worker_respawns"] >= 2
            # the pool heals: the next use spawns fresh workers
            assert pool.ping()
            assert stats.counters["worker_pool_spawns"] > spawns_before
        finally:
            pool.shutdown()

    def test_need_record_roundtrip_then_zero_copy_redispatch(self):
        stats = ServiceStats()
        pool = WorkerPool(1, stats=stats)
        request = CompileRequest(target=bv_circuit(4))
        fingerprint = request.fingerprint()
        try:
            assert pool.ping()  # spawn now so _shipped survives below
            # pretend the record already shipped: the cold worker answers
            # need_record and the parent resubmits with the record forced
            pool._shipped[fingerprint] = pool.max_workers
            [text] = pool.run([("entry", fingerprint, request, None)])
            loads_entry(text, key=fingerprint)  # validates the stamped key
            assert stats.counters["worker_record_misses"] == 1
            assert stats.counters["worker_records_shipped"] == 1
            # the lane is warm: a re-dispatch ships nothing and matches
            pool._shipped[fingerprint] = pool.max_workers
            [again] = pool.run([("entry", fingerprint, request, None)])
            assert _entry_dict(again, fingerprint) == _entry_dict(
                text, fingerprint
            )
            assert stats.counters["worker_record_misses"] == 1
            assert stats.counters["worker_records_shipped"] == 1
        finally:
            pool.shutdown()

    def test_results_come_back_in_input_order(self):
        pool = WorkerPool(2)
        requests = [CompileRequest(target=bv_circuit(n)) for n in (4, 5, 6)]
        try:
            texts = pool.run(
                [("entry", r.fingerprint(), r, None) for r in requests]
            )
            for request, text in zip(requests, texts):
                # loads_entry validates the stamped key matches the request
                loads_entry(text, key=request.fingerprint())
        finally:
            pool.shutdown()


class TestServiceIntegration:
    def _batch_dicts(self, reports):
        return [_normalized(report_to_dict(report)) for report in reports]

    def test_persistent_batch_matches_serial_and_reuses_the_pool(self):
        requests = [CompileRequest(target=bv_circuit(n)) for n in (4, 5, 6)]
        serial = CompileService()
        pooled = CompileService(max_workers=2, workers_mode="persistent")
        try:
            base = self._batch_dicts(serial.compile_batch(requests, parallel=False))
            fast = self._batch_dicts(
                pooled.compile_batch(requests, parallel=True, max_workers=2)
            )
            assert fast == base, "pooled batch must match the serial path"
            assert pooled.stats.counters["worker_pool_spawns"] == 1
            assert pooled.stats.counters["worker_tasks"] >= 3
            # a second dispatch reuses the same pool generation
            pooled.cache.clear()
            again = self._batch_dicts(
                pooled.compile_batch(requests, parallel=True, max_workers=2)
            )
            assert again == base
            assert pooled.stats.counters["worker_pool_spawns"] == 1
        finally:
            serial.close()
            pooled.close()

    def test_ephemeral_mode_matches_serial(self):
        requests = [CompileRequest(target=bv_circuit(n)) for n in (4, 5)]
        serial = CompileService()
        ephemeral = CompileService(max_workers=2, workers_mode="ephemeral")
        try:
            base = self._batch_dicts(serial.compile_batch(requests, parallel=False))
            fast = self._batch_dicts(
                ephemeral.compile_batch(requests, parallel=True, max_workers=2)
            )
            assert fast == base
            assert "worker_pool_spawns" not in ephemeral.stats.counters
        finally:
            serial.close()
            ephemeral.close()

    def test_close_is_idempotent_and_the_pool_respawns_lazily(self):
        service = CompileService(max_workers=2, workers_mode="persistent")
        requests = [CompileRequest(target=bv_circuit(n)) for n in (4, 5)]
        try:
            service.compile_batch(requests, parallel=True, max_workers=2)
            service.close()
            service.close()
            service.cache.clear()
            service.compile_batch(requests, parallel=True, max_workers=2)
            assert service.stats.counters["worker_pool_spawns"] == 2
        finally:
            service.close()
