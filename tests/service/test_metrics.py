"""Observability layer: histograms, Prometheus exporter, request logs.

The renderer tests parse the exposition body back with a strict
mini-parser instead of substring checks, so a malformed line (bad label
escaping, missing TYPE, non-monotone buckets) fails loudly.  The
endpoint tests drive a real server thread: ``GET /v1/metrics`` must
yield a parseable body whose counters/histograms reflect the requests
just served, and the JSONL request log must carry the full stable
schema per line.
"""

import http.client
import io
import json
import math
import re

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    DEFAULT_BUCKETS,
    CompileService,
    LatencyHistogram,
    RemoteCompileService,
    ServiceStats,
    render_prometheus,
    start_server_thread,
)
from repro.service.reqlog import RECORD_FIELDS, REQUEST_LOG_ENV, RequestLog
from repro.service.service import CompileRequest
from repro.workloads import bv_circuit

# -- a strict mini-parser for Prometheus text format 0.0.4 ---------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """Parse an exposition body into ``(types, samples)``.

    ``types`` maps metric family -> kind; ``samples`` is a list of
    ``(name, labels_dict, value)``.  Asserts the structural rules the
    format demands: newline-terminated, HELP/TYPE comments well-formed,
    one TYPE per family, every sample line parseable.
    """
    assert text.endswith("\n"), "exposition body must end with a newline"
    types = {}
    samples = []
    for line in text.splitlines():
        assert line and line == line.strip(), f"bad line: {line!r}"
        if line.startswith("# HELP "):
            name, sep, help_text = line[len("# HELP ") :].partition(" ")
            assert sep and help_text, f"HELP without text: {line!r}"
        elif line.startswith("# TYPE "):
            name, sep, kind = line[len("# TYPE ") :].partition(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            match = _SAMPLE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            labels = dict(
                (k, v) for k, v in _LABEL.findall(match.group("labels") or "")
            )
            samples.append(
                (match.group("name"), labels, float(match.group("value")))
            )
    return types, samples


def family_of(name, types):
    """The declared family a sample belongs to (asserts one exists)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        root = name[: -len(suffix)] if name.endswith(suffix) else None
        if root and types.get(root) == "histogram":
            return root
    raise AssertionError(f"sample {name!r} has no TYPE declaration")


def sample_value(samples, name, **labels):
    for sample_name, sample_labels, value in samples:
        if sample_name == name and sample_labels == labels:
            return value
    raise AssertionError(f"no sample {name} with labels {labels}")


# -- LatencyHistogram ----------------------------------------------------------


class TestLatencyHistogram:
    def test_observe_lands_in_le_bucket(self):
        hist = LatencyHistogram()
        hist.observe(0.003)  # 0.0025 < v <= 0.005
        assert hist.counts[DEFAULT_BUCKETS.index(0.005)] == 1
        hist.observe(0.001)  # exactly on a bound -> that bucket (le semantics)
        assert hist.counts[0] == 1
        hist.observe(120.0)  # past the last bound -> +Inf overflow
        assert hist.counts[-1] == 1
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.003 + 0.001 + 120.0)

    def test_cumulative_is_monotone_and_ends_at_inf_total(self):
        hist = LatencyHistogram()
        for value in (0.0001, 0.004, 0.004, 0.7, 999.0):
            hist.observe(value)
        pairs = hist.cumulative()
        assert len(pairs) == len(DEFAULT_BUCKETS) + 1
        counts = [count for _, count in pairs]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert pairs[-1] == (math.inf, hist.count)
        bounds = [bound for bound, _ in pairs[:-1]]
        assert bounds == list(DEFAULT_BUCKETS)

    def test_quantile_estimates_bucket_upper_bound(self):
        hist = LatencyHistogram()
        for _ in range(9):
            hist.observe(0.001)
        hist.observe(10.0)
        assert hist.quantile(0.5) == 0.001
        assert hist.quantile(0.99) == 10.0
        assert LatencyHistogram().quantile(0.5) == 0.0

    def test_merge_adds_elementwise(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.01)
        b.observe(0.01)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.sum == pytest.approx(0.02 + 5.0)
        assert b.count == 2, "merge must not mutate the source"

    def test_merge_rejects_different_buckets(self):
        a = LatencyHistogram()
        b = LatencyHistogram(buckets=(0.1, 1.0))
        with pytest.raises(ServiceError):
            a.merge(b)

    def test_invalid_buckets_rejected(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ServiceError):
                LatencyHistogram(buckets=bad)

    def test_dict_roundtrip(self):
        hist = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        hist.observe(0.05)
        hist.observe(7.0)
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.buckets == hist.buckets
        assert clone.counts == hist.counts
        assert clone.sum == hist.sum
        with pytest.raises(ServiceError):
            LatencyHistogram.from_dict(
                {"buckets": [0.01], "counts": [1, 2, 3], "sum": 0.0}
            )


class TestStatsHistograms:
    def test_observe_creates_and_accumulates(self):
        stats = ServiceStats()
        stats.observe("request_latency", 0.02)
        stats.observe("request_latency", 0.5)
        assert stats.histograms["request_latency"].count == 2
        snapshot = stats.to_dict()
        assert snapshot["histograms"]["request_latency"]["count"] == 2

    def test_to_dict_omits_empty_histograms(self):
        assert "histograms" not in ServiceStats().to_dict()

    def test_merge_folds_histograms_and_keeps_counters(self):
        a, b = ServiceStats(), ServiceStats()
        a.count("requests", 2)
        a.observe("request_latency", 0.01)
        b.count("requests", 3)
        b.observe("request_latency", 0.2)
        b.observe("serialize", 0.001)
        a.merge(b)
        assert a.counters["requests"] == 5
        assert a.histograms["request_latency"].count == 2
        assert a.histograms["serialize"].count == 1

    def test_reset_clears_histograms(self):
        stats = ServiceStats()
        stats.observe("request_latency", 0.01)
        stats.reset()
        assert stats.histograms == {}


# -- the Prometheus renderer ---------------------------------------------------


class TestRenderPrometheus:
    def _stats(self):
        stats = ServiceStats()
        stats.count("requests", 3)
        stats.count("http:/v1/compile", 2)
        stats.count("portfolio_wins:qs_min_depth", 1)
        stats.add_time("compile", 1.5)
        stats.set_value("shard_bytes:ab12", 4096)
        stats.observe("request_latency", 0.002)
        stats.observe("request_latency", 0.8)
        stats.observe("request_latency:/v1/compile", 0.002)
        return stats

    def test_golden_parse(self):
        body = render_prometheus(
            self._stats(), extra_gauges={"uptime_seconds": 12.5, "inflight": 0}
        )
        types, samples = parse_prometheus(body)
        # every sample belongs to a declared family of the right kind
        for name, _, _ in samples:
            family_of(name, types)
        assert types["caqr_requests_total"] == "counter"
        assert types["caqr_time_compile_seconds_total"] == "counter"
        assert types["caqr_shard_bytes"] == "gauge"
        assert types["caqr_request_latency_seconds"] == "histogram"
        assert sample_value(samples, "caqr_requests_total") == 3
        assert sample_value(samples, "caqr_http_total", path="/v1/compile") == 2
        assert (
            sample_value(
                samples, "caqr_portfolio_wins_total", strategy="qs_min_depth"
            )
            == 1
        )
        assert sample_value(samples, "caqr_time_compile_seconds_total") == 1.5
        assert sample_value(samples, "caqr_shard_bytes", shard="ab12") == 4096
        assert sample_value(samples, "caqr_uptime_seconds") == 12.5
        assert sample_value(samples, "caqr_inflight") == 0

    def test_histogram_buckets_monotone_and_inf_matches_count(self):
        body = render_prometheus(self._stats())
        types, samples = parse_prometheus(body)
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name == "caqr_request_latency_seconds_bucket" and "path" not in labels
        ]
        assert buckets, "expected bucket samples for the overall histogram"
        assert buckets[-1][0] == "+Inf"
        bounds = [float("inf") if le == "+Inf" else float(le) for le, _ in buckets]
        assert bounds == sorted(bounds)
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        total = sample_value(samples, "caqr_request_latency_seconds_count")
        assert counts[-1] == total == 2
        labelled = sample_value(
            samples, "caqr_request_latency_seconds_count", path="/v1/compile"
        )
        assert labelled == 1

    def test_label_values_are_escaped(self):
        stats = ServiceStats()
        stats.count('http:/v1/"x"\\y\nz', 1)
        body = render_prometheus(stats)
        types, samples = parse_prometheus(body)
        (sample,) = [s for s in samples if s[0] == "caqr_http_total"]
        # the parser only accepts well-escaped label values, so a parsed
        # sample proves the renderer escaped quote/backslash/newline
        assert sample[1]["path"] == '/v1/\\"x\\"\\\\y\\nz'

    def test_unlabelled_families_fall_back_to_key_label(self):
        stats = ServiceStats()
        stats.count("made_up_family:some_key", 4)
        _, samples = parse_prometheus(render_prometheus(stats))
        assert (
            sample_value(samples, "caqr_made_up_family_total", key="some_key") == 4
        )


# -- the request log -----------------------------------------------------------


class TestRequestLog:
    def test_record_schema_and_unknown_fields(self):
        sink = io.StringIO()
        log = RequestLog(sink)
        log.log(method="GET", path="/v1/health", status=200, extra="kept")
        (line,) = sink.getvalue().splitlines()
        record = json.loads(line)
        for field in RECORD_FIELDS:
            assert field in record
        assert record["method"] == "GET"
        assert record["fingerprint"] is None
        assert record["extra"] == "kept"
        assert isinstance(record["ts"], float)

    def test_close_leaves_foreign_handles_open(self):
        sink = io.StringIO()
        log = RequestLog(sink)
        log.close()
        assert not sink.closed
        log.log(method="GET")  # logging after close is a no-op, not a crash

    def test_path_target_appends(self, tmp_path):
        path = tmp_path / "nested" / "requests.jsonl"
        for status in (200, 404):
            log = RequestLog(str(path))
            log.log(method="GET", path="/", status=status)
            log.close()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [r["status"] for r in records] == [200, 404]

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(REQUEST_LOG_ENV, raising=False)
        assert RequestLog.from_env() is None
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv(REQUEST_LOG_ENV, str(target))
        log = RequestLog.from_env()
        assert log is not None
        log.log(method="GET")
        log.close()
        assert target.exists()


# -- the /v1/metrics endpoint + logged server ----------------------------------


@pytest.fixture
def logged_server(tmp_path):
    log_path = tmp_path / "requests.jsonl"
    handle = start_server_thread(
        service=CompileService(), request_log=str(log_path)
    )
    handle.log_path = log_path
    yield handle
    handle.stop()


@pytest.fixture
def client(logged_server):
    with RemoteCompileService(
        logged_server.url, timeout=120, backoff=0.01
    ) as remote:
        yield remote


class TestMetricsEndpoint:
    def test_metrics_body_parses_and_reflects_traffic(self, logged_server, client):
        request = CompileRequest(target=bv_circuit(5))
        for _ in range(3):  # miss, hit (stores envelope), envelope hit
            client.compile_classified(request)
        types, samples = parse_prometheus(client.metrics())
        for name, _, _ in samples:
            family_of(name, types)
        assert sample_value(samples, "caqr_requests_total") == 3
        assert sample_value(samples, "caqr_hits_total") == 2
        assert sample_value(samples, "caqr_envelope_stores_total") >= 1
        assert sample_value(samples, "caqr_envelope_hits_total") >= 1
        assert sample_value(samples, "caqr_uptime_seconds") > 0
        assert types["caqr_request_latency_seconds"] == "histogram"
        compiles = sample_value(
            samples,
            "caqr_request_latency_seconds_count",
            path="/v1/compile",
        )
        assert compiles == 3

    def test_metrics_content_type(self, logged_server):
        server = logged_server.server
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("GET", "/v1/metrics")
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            content_type = response.getheader("Content-Type")
            assert content_type.startswith("text/plain")
            assert "version=0.0.4" in content_type
            parse_prometheus(body.decode("utf-8"))
        finally:
            conn.close()

    def test_health_and_stats_carry_process_gauges(self, client):
        health = client.health()
        assert health["uptime_s"] >= 0
        # the probing request itself is in flight while the gauge is read
        assert health["inflight"] == 1
        stats = client.stats()
        assert stats["uptime_s"] >= 0
        assert stats["inflight"] == 1
        assert stats["draining"] is False

    def test_envelope_invalidation(self, client):
        request = CompileRequest(target=bv_circuit(6))
        fingerprint = request.fingerprint()
        for _ in range(3):
            client.compile_classified(request)
        assert client.invalidate(fingerprint) is True
        _, _, status = client.compile_classified(request)
        assert status == "miss", "invalidate must drop the envelope too"
        counters = client.stats()["stats"]["counters"]
        assert counters["envelope_invalidations"] >= 1
        client.clear()
        _, _, status = client.compile_classified(request)
        assert status == "miss"

    def test_cold_compile_surfaces_engine_stats(self, client):
        from repro.hardware import generic_backend, line

        # min_swap runs the SR router, whose RouteStats ride the report;
        # the server folds them into their own caqr_route_* prefix
        request = CompileRequest(
            target=bv_circuit(5),
            backend=generic_backend(line(7), seed=7),
            mode="min_swap",
        )
        client.compile_request(request)
        types, samples = parse_prometheus(client.metrics())
        route_counters = [
            name
            for name, _, _ in samples
            if name.startswith("caqr_route_") and name.endswith("_total")
        ]
        assert route_counters, "route stats never reached /v1/metrics"
        assert sample_value(samples, "caqr_route_slack_recomputes_total") > 0
        assert (
            types["caqr_route_time_sr_run_seconds_total"] == "counter"
        ), "route timers must render with the standard timer naming"
        # a warm repeat must not double-count the engine stats
        before = sample_value(samples, "caqr_route_slack_recomputes_total")
        client.compile_request(request)
        _, warm_samples = parse_prometheus(client.metrics())
        assert (
            sample_value(warm_samples, "caqr_route_slack_recomputes_total")
            == before
        )

    def test_request_log_lines_are_schema_complete(self, logged_server, client):
        request = CompileRequest(target=bv_circuit(4))
        client.compile_classified(request)
        client.compile_classified(request)
        client.health()
        records = [
            json.loads(line)
            for line in logged_server.log_path.read_text().splitlines()
        ]
        assert len(records) >= 3
        for record in records:
            for field in RECORD_FIELDS:
                assert field in record, f"missing {field!r} in {record}"
            assert record["status"] == 200
            assert record["latency_ms"] >= 0
        compiles = [r for r in records if r["path"] == "/v1/compile"]
        assert [r["cache"] for r in compiles] == ["miss", "hit"]
        for record in compiles:
            assert record["fingerprint"] == request.fingerprint()
            assert record["strategy"] == "auto"
            assert record["error"] is None
