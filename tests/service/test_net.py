"""Networked compile service: wire protocol, server, client, failure modes.

Everything runs in-process — the server on a background thread
(``start_server_thread``, port 0), clients on the test thread — so the
suite exercises real sockets without fixed ports or subprocesses.  The
cross-*process* acceptance path (many client processes, SIGTERM drain)
lives in ``scripts/server_smoke.py`` and the CI smoke job.
"""

import http.client
import json
import threading
import time

import pytest

import repro.service.service as service_module
from repro.exceptions import RemoteServiceError
from repro.hardware import ibm_mumbai
from repro.service import (
    CompileServer,
    CompileService,
    RemoteCompileService,
    WireError,
    start_server_thread,
)
from repro.service.net.wire import (
    WIRE_SCHEMA_VERSION,
    error_from_wire,
    error_to_wire,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from repro.service.service import CompileRequest, resolve_cache
from repro.workloads import bv_circuit, random_graph


class TestWire:
    def test_circuit_request_roundtrip(self):
        request = CompileRequest(
            target=bv_circuit(5), mode="max_reuse", qubit_limit=3, seed=7
        )
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.fingerprint() == request.fingerprint()
        assert decoded.mode == "max_reuse"
        assert decoded.qubit_limit == 3
        assert decoded.seed == 7

    def test_graph_request_roundtrip(self):
        request = CompileRequest(target=random_graph(8, 0.4, seed=3))
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.fingerprint() == request.fingerprint()

    def test_backend_request_roundtrip(self):
        request = CompileRequest(
            target=bv_circuit(5), backend=ibm_mumbai(), mode="min_swap"
        )
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.fingerprint() == request.fingerprint()
        assert decoded.shard() == request.shard()

    def test_schema_mismatch_rejected(self):
        payload = request_to_wire(CompileRequest(target=bv_circuit(5)))
        payload["schema"] = 999
        with pytest.raises(WireError):
            request_from_wire(payload)

    def test_malformed_request_rejected(self):
        with pytest.raises(WireError):
            request_from_wire("not a dict")
        with pytest.raises(WireError):
            request_from_wire({"schema": WIRE_SCHEMA_VERSION, "target_kind": "x"})

    def test_response_roundtrip_sets_from_cache(self):
        report = CompileService().compile(bv_circuit(5))
        for status, expected in (("miss", False), ("hit", True), ("inflight", True)):
            payload = response_to_wire("f" * 64, status, report)
            decoded, fingerprint, decoded_status = response_from_wire(
                json.loads(json.dumps(payload))
            )
            assert fingerprint == "f" * 64
            assert decoded_status == status
            assert decoded.from_cache is expected
            assert decoded.metrics == report.metrics

    def test_bad_cache_status_rejected(self):
        report = CompileService().compile(bv_circuit(5))
        with pytest.raises(WireError):
            response_to_wire("f" * 64, "warmish", report)

    def test_error_envelope_roundtrip(self):
        code, message = error_from_wire(error_to_wire("overloaded", "busy"))
        assert (code, message) == ("overloaded", "busy")
        with pytest.raises(WireError):
            error_to_wire("made_up_code", "nope")

    def test_error_from_junk_defaults_to_internal(self):
        for junk in (None, "a proxy error page", {"error": {"code": "bogus"}}):
            code, _ = error_from_wire(junk)
            assert code == "internal"


@pytest.fixture
def server():
    handle = start_server_thread(service=CompileService())
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with RemoteCompileService(server.url, timeout=120, backoff=0.01) as remote:
        yield remote


class TestServerRoundtrip:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["draining"] is False

    def test_miss_then_hit_statuses(self, client):
        request = CompileRequest(target=bv_circuit(6))
        report, fingerprint, status = client.compile_classified(request)
        assert status == "miss"
        assert report.from_cache is False
        assert fingerprint == request.fingerprint()
        again, fingerprint2, status2 = client.compile_classified(request)
        assert status2 == "hit"
        assert again.from_cache is True
        assert fingerprint2 == fingerprint
        assert again.metrics == report.metrics

    def test_cache_headers_on_the_wire(self, server):
        body = json.dumps(
            request_to_wire(CompileRequest(target=bv_circuit(5)))
        ).encode()
        conn = http.client.HTTPConnection(server.server.host, server.server.port)
        try:
            statuses = []
            for _ in range(2):
                conn.request("POST", "/v1/compile", body=body)
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert response.getheader("X-CaQR-Fingerprint")
                statuses.append(response.getheader("X-CaQR-Cache"))
            assert statuses == ["miss", "hit"]
        finally:
            conn.close()

    def test_batch_roundtrip_folds_duplicates(self, client, server):
        requests = [
            CompileRequest(target=bv_circuit(5)),
            CompileRequest(target=bv_circuit(6)),
            CompileRequest(target=bv_circuit(5)),
        ]
        reports = client.compile_batch(requests)
        assert len(reports) == 3
        assert reports[0].metrics == reports[2].metrics
        assert server.server.service.stats.counters["misses"] == 2
        assert server.server.service.stats.counters["dedup_folds"] == 1

    def test_remote_equals_local(self, client):
        circuit = bv_circuit(7)
        remote = client.compile(circuit, mode="max_reuse")
        local = CompileService().compile(circuit, mode="max_reuse")
        assert remote.circuit.data == local.circuit.data
        assert remote.metrics == local.metrics
        assert remote.baseline_metrics == local.baseline_metrics
        assert remote.reuse_beneficial == local.reuse_beneficial
        assert remote.qubit_saving == local.qubit_saving

    def test_stats_endpoint(self, client):
        client.compile(bv_circuit(5))
        payload = client.stats()
        assert payload["stats"]["counters"]["requests"] >= 1
        assert payload["stats"]["counters"]["http_requests"] >= 1
        assert "hit_rate" in payload["stats"]

    def test_invalidate_endpoint(self, client):
        request = CompileRequest(target=bv_circuit(5))
        _, fingerprint, _ = client.compile_classified(request)
        assert client.invalidate(fingerprint) is True
        assert client.invalidate(fingerprint) is False
        _, _, status = client.compile_classified(request)
        assert status == "miss"

    def test_clear_endpoint(self, client):
        request = CompileRequest(target=bv_circuit(5))
        client.compile_classified(request)
        client.clear()
        _, _, status = client.compile_classified(request)
        assert status == "miss"

    def test_resolve_cache_url(self, server):
        spec = resolve_cache(server.url)
        assert isinstance(spec, RemoteCompileService)
        assert spec.url == server.url
        assert resolve_cache(spec) is spec


class TestServerErrors:
    def _raw(self, server, method, path, body=b"", headers=None):
        conn = http.client.HTTPConnection(server.server.host, server.server.port)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = json.loads(response.read() or b"null")
            return response.status, payload
        finally:
            conn.close()

    def test_unknown_route(self, server):
        status, payload = self._raw(server, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_method_not_allowed(self, server):
        status, payload = self._raw(server, "POST", "/v1/health")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        status, payload = self._raw(server, "GET", "/v1/compile")
        assert status == 405

    def test_bad_json_body(self, server):
        status, payload = self._raw(server, "POST", "/v1/compile", b"not json")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_schema_mismatch_is_bad_request(self, server):
        body = json.dumps({"schema": 999}).encode()
        status, payload = self._raw(server, "POST", "/v1/compile", body)
        assert status == 400

    def test_payload_too_large(self):
        handle = start_server_thread(
            service=CompileService(), max_body=128
        )
        try:
            status, payload = self._raw(handle, "POST", "/v1/compile", b"x" * 1024)
            assert status == 413
            assert payload["error"]["code"] == "payload_too_large"
        finally:
            handle.stop()

    def test_infeasible_budget_is_compile_error(self, client):
        request = CompileRequest(
            target=bv_circuit(5), mode="qubit_budget", qubit_limit=1
        )
        with pytest.raises(RemoteServiceError) as excinfo:
            client.compile_request(request)
        assert excinfo.value.code == "compile_error"
        assert excinfo.value.status == 422


def _slow_cold_compile(monkeypatch, started, release):
    """Patch the cold-compile hook so compiles block until *release* is set."""
    original = service_module._cold_compile

    def slow(request, allow_parallel):
        started.set()
        assert release.wait(30), "test forgot to release the compile"
        return original(request, allow_parallel)

    monkeypatch.setattr(service_module, "_cold_compile", slow)


class TestConcurrency:
    def test_inflight_dedup_across_clients(self, monkeypatch):
        started, release = threading.Event(), threading.Event()
        _slow_cold_compile(monkeypatch, started, release)
        handle = start_server_thread(service=CompileService())
        try:
            request = CompileRequest(target=bv_circuit(6))
            outcomes = []

            def hammer():
                remote = RemoteCompileService(handle.url, timeout=60)
                outcomes.append(remote.compile_classified(request))
                remote.close()

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            assert started.wait(30)
            time.sleep(0.1)  # let the stragglers join the in-flight future
            release.set()
            for thread in threads:
                thread.join(60)
            statuses = sorted(status for _, _, status in outcomes)
            stats = handle.server.service.stats
            assert stats.counters["misses"] == 1
            assert statuses.count("miss") == 1
            assert set(statuses) <= {"miss", "inflight", "hit"}
            fingerprints = {fp for _, fp, _ in outcomes}
            assert fingerprints == {request.fingerprint()}
            metrics = {str(report.metrics) for report, _, _ in outcomes}
            assert len(metrics) == 1
        finally:
            release.set()
            handle.stop()

    def test_timeout_answers_504_and_is_not_retried(self, monkeypatch):
        started, release = threading.Event(), threading.Event()
        _slow_cold_compile(monkeypatch, started, release)
        handle = start_server_thread(
            service=CompileService(), request_timeout=0.2
        )
        try:
            remote = RemoteCompileService(
                handle.url, timeout=30, retries=3, backoff=0.01
            )
            with pytest.raises(RemoteServiceError) as excinfo:
                remote.compile_request(CompileRequest(target=bv_circuit(6)))
            assert excinfo.value.code == "timeout"
            assert excinfo.value.status == 504
            release.set()
            # only ONE compile ever started: timeout responses are final
            assert handle.server.service.stats.counters["misses"] == 1
        finally:
            release.set()
            handle.stop()

    def test_backpressure_answers_429(self, monkeypatch):
        started, release = threading.Event(), threading.Event()
        _slow_cold_compile(monkeypatch, started, release)
        handle = start_server_thread(
            service=CompileService(), max_concurrency=1
        )
        try:
            blocker = threading.Thread(
                target=lambda: RemoteCompileService(
                    handle.url, timeout=60
                ).compile_request(CompileRequest(target=bv_circuit(6)))
            )
            blocker.start()
            assert started.wait(30)
            rejected = RemoteCompileService(
                handle.url, timeout=30, retries=0
            )
            with pytest.raises(RemoteServiceError) as excinfo:
                rejected.compile_request(CompileRequest(target=bv_circuit(7)))
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.status == 429
            release.set()
            blocker.join(60)
        finally:
            release.set()
            handle.stop()

    def test_drain_finishes_inflight_then_rejects(self, monkeypatch):
        started, release = threading.Event(), threading.Event()
        _slow_cold_compile(monkeypatch, started, release)
        handle = start_server_thread(service=CompileService())
        outcome = {}

        def inflight():
            remote = RemoteCompileService(handle.url, timeout=60)
            outcome["report"] = remote.compile_request(
                CompileRequest(target=bv_circuit(6))
            )

        worker = threading.Thread(target=inflight)
        worker.start()
        assert started.wait(30)
        handle.server.request_shutdown_threadsafe()
        time.sleep(0.2)  # let the drain flip the flag
        release.set()
        worker.join(60)
        handle.thread.join(30)
        assert not handle.thread.is_alive(), "server failed to drain"
        # the in-flight request completed despite the shutdown
        assert outcome["report"].metrics is not None
        # the socket is gone afterwards
        late = RemoteCompileService(handle.url, timeout=5, retries=0)
        with pytest.raises(RemoteServiceError) as excinfo:
            late.health()
        assert excinfo.value.code == "connect_error"


class TestClientRetry:
    def test_connect_error_after_retries(self):
        remote = RemoteCompileService(
            "http://127.0.0.1:9", timeout=0.5, retries=2, backoff=0.01
        )
        start = time.monotonic()
        with pytest.raises(RemoteServiceError) as excinfo:
            remote.health()
        assert excinfo.value.code == "connect_error"
        assert excinfo.value.status == 0
        # two backoff sleeps happened (jittered 0.01 * 2**n scale)
        assert time.monotonic() - start < 10

    def test_bad_url_rejected(self):
        with pytest.raises(RemoteServiceError):
            RemoteCompileService("ftp://example.com")
        with pytest.raises(RemoteServiceError):
            RemoteCompileService("http://")
