"""Fleet layer: hash ring, membership machine, gateway, auth, TLS.

Pure-logic pieces (:class:`HashRing`, :class:`FleetState`) are tested
with fake clocks and synthetic keys; the gateway tests run real servers
and a real gateway on background threads (port 0), same as
``test_net.py``.  The cross-*process* acceptance path (SIGKILL a
backend mid-run, exactly-one cold compile fleet-wide) lives in
``scripts/fleet_smoke.py`` and the CI fleet-smoke job.
"""

import os
import threading
import time

import pytest

from repro.exceptions import RemoteServiceError, ServiceError
from repro.service import (
    CompileRequest,
    CompileService,
    FleetState,
    HashRing,
    RemoteCompileService,
    ring_key,
    start_gateway_thread,
    start_server_thread,
)
from repro.service.cache import DEFAULT_SHARD
from repro.workloads import bv_circuit

from tests.service.test_metrics import parse_prometheus, sample_value

CERTS = os.path.join(os.path.dirname(__file__), "certs")
CERT = os.path.join(CERTS, "cert.pem")
KEY = os.path.join(CERTS, "key.pem")


def _keys(n):
    return [f"key-{i:04d}" for i in range(n)]


def _start_flaky_batch_backend():
    """Stub backend: healthy probes, first ``/v1/compile_batch`` answers
    500, every later one succeeds with pass-through member results."""
    import json
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    state = {"batch_calls": 0}

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):
            pass

        def _reply(self, status, payload):
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):
            self._reply(200, {"ok": True})

        def do_POST(self):
            from repro.service.net.wire import WIRE_SCHEMA_VERSION

            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length))
            state["batch_calls"] += 1
            if state["batch_calls"] == 1:
                self._reply(
                    500,
                    {
                        "schema": WIRE_SCHEMA_VERSION,
                        "error": {"code": "internal", "message": "boom"},
                    },
                )
                return
            results = [
                {"stub": index} for index in range(len(payload["requests"]))
            ]
            self._reply(
                200, {"schema": WIRE_SCHEMA_VERSION, "results": results}
            )

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, state


class TestHashRing:
    def test_deterministic_across_instances(self):
        members = ["http://a:1", "http://b:2", "http://c:3"]
        first = HashRing(members)
        second = HashRing(list(reversed(members)))
        for key in _keys(200):
            assert first.owner(key) == second.owner(key)

    def test_every_member_owns_keys(self):
        ring = HashRing(["http://a:1", "http://b:2", "http://c:3"])
        owners = {ring.owner(key) for key in _keys(500)}
        assert owners == set(ring.members)

    def test_replicas_distinct_and_start_with_owner(self):
        ring = HashRing(["http://a:1", "http://b:2", "http://c:3"])
        for key in _keys(50):
            replicas = ring.replicas(key)
            assert replicas[0] == ring.owner(key)
            assert len(replicas) == len(set(replicas)) == 3

    def test_minimal_movement_on_member_add(self):
        members = [f"http://node-{i}:80" for i in range(4)]
        before = HashRing(members)
        after = HashRing(members + ["http://node-4:80"])
        keys = _keys(2000)
        moved = sum(before.owner(k) != after.owner(k) for k in keys)
        # ideal is 1/5 of keys; allow generous slack over the
        # vnode-sampling variance but far below a full reshuffle
        assert moved / len(keys) < 0.35
        # every key that moved, moved to the new member
        for key in keys:
            if before.owner(key) != after.owner(key):
                assert after.owner(key) == "http://node-4:80"

    def test_minimal_movement_on_member_removal(self):
        members = [f"http://node-{i}:80" for i in range(4)]
        before = HashRing(members)
        after = HashRing(members[:-1])
        keys = _keys(2000)
        for key in keys:
            if before.owner(key) != members[-1]:
                # keys not owned by the removed member never move
                assert after.owner(key) == before.owner(key)

    def test_empty_ring(self):
        ring = HashRing([])
        assert ring.owner("anything") is None
        assert ring.replicas("anything") == []

    def test_ring_key_prefers_shard(self):
        assert ring_key("sharddigest", "fp") == "sharddigest"
        assert ring_key(DEFAULT_SHARD, "fp") == "fp"


class TestFleetState:
    def _fleet(self, **kwargs):
        kwargs.setdefault("mark_down_after", 3)
        kwargs.setdefault("probe_interval", 10.0)
        return FleetState(["http://a:1", "http://b:2"], **kwargs)

    def test_mark_down_after_consecutive_failures(self):
        fleet = self._fleet()
        assert not fleet.record_failure("http://a:1", now=0.0)
        assert not fleet.record_failure("http://a:1", now=1.0)
        # third consecutive failure crosses the threshold: ring changes
        assert fleet.record_failure("http://a:1", now=2.0)
        assert list(fleet.up_members()) == ["http://b:2"]
        assert fleet.ring().members == ("http://b:2",)
        assert fleet.health["http://a:1"].marked_down == 1

    def test_success_resets_failure_streak(self):
        fleet = self._fleet()
        fleet.record_failure("http://a:1", now=0.0)
        fleet.record_failure("http://a:1", now=1.0)
        fleet.record_success("http://a:1", now=2.0)
        assert not fleet.record_failure("http://a:1", now=3.0)
        assert "http://a:1" in fleet.up_members()

    def test_reprobe_brings_member_back(self):
        fleet = self._fleet()
        for t in range(3):
            fleet.record_failure("http://a:1", now=float(t))
        assert "http://a:1" not in fleet.up_members()
        # rejoin changes the topology exactly once
        assert fleet.record_success("http://a:1", now=10.0)
        assert not fleet.record_success("http://a:1", now=11.0)
        assert sorted(fleet.up_members()) == ["http://a:1", "http://b:2"]

    def test_down_member_due_for_reprobe(self):
        fleet = self._fleet(probe_interval=5.0)
        for t in range(3):
            fleet.record_failure("http://a:1", now=float(t))
        next_probe = fleet.health["http://a:1"].next_probe
        assert next_probe > 2.0
        assert "http://a:1" not in fleet.due(next_probe - 0.01)
        assert "http://a:1" in fleet.due(next_probe + 0.01)

    def test_jitter_is_deterministic(self):
        one = self._fleet(seed=7)
        two = self._fleet(seed=7)
        for t in range(3):
            one.record_failure("http://a:1", now=float(t))
            two.record_failure("http://a:1", now=float(t))
        assert (
            one.health["http://a:1"].next_probe
            == two.health["http://a:1"].next_probe
        )

    def test_ring_moves_counted(self):
        fleet = self._fleet()
        assert fleet.ring_moves == 0
        for t in range(3):
            fleet.record_failure("http://a:1", now=float(t))
        assert fleet.ring_moves > 0

    def test_unknown_member_rejected(self):
        fleet = self._fleet()
        with pytest.raises(ServiceError):
            fleet.record_failure("http://nope:9", now=0.0)


@pytest.fixture
def fleet_pair():
    servers = [start_server_thread(service=CompileService()) for _ in range(2)]
    gateway = start_gateway_thread(
        backends=[h.url for h in servers], probe_interval=0.2
    )
    yield servers, gateway
    gateway.stop()
    for handle in servers:
        handle.stop()


class TestGateway:
    def test_single_cold_compile_across_fleet(self, fleet_pair):
        servers, gateway = fleet_pair
        with RemoteCompileService(gateway.url, backoff=0.01) as client:
            first = client.compile(bv_circuit(5))
            second = client.compile(bv_circuit(5))
        assert not first.from_cache and second.from_cache
        assert first.metrics == second.metrics
        misses = sum(
            h.server.service.stats.counters.get("misses", 0) for h in servers
        )
        assert misses == 1

    def test_distinct_keys_spread_and_both_serve(self, fleet_pair):
        servers, gateway = fleet_pair
        ring = HashRing([h.url for h in servers])
        with RemoteCompileService(gateway.url, backoff=0.01) as client:
            for width in range(3, 9):
                request = CompileRequest(target=bv_circuit(width))
                expected = ring.owner(
                    ring_key(request.shard(), request.fingerprint())
                )
                client.compile(bv_circuit(width))
                served = {
                    h.url: h.server.service.stats.counters.get("misses", 0)
                    for h in servers
                }
                # each cold compile landed exactly where the ring says
                assert served[expected] >= 1

    def test_gateway_health_and_stats(self, fleet_pair):
        servers, gateway = fleet_pair
        with RemoteCompileService(gateway.url, backoff=0.01) as client:
            client.compile(bv_circuit(5))
            health = client.health()
            assert health["gateway"] is True
            assert sorted(health["fleet"]["up"]) == sorted(
                h.url for h in servers
            )
            stats = client.stats()
        assert set(stats["backends"]) == {h.url for h in servers}
        assert stats["fleet"]["counters"].get("requests", 0) >= 1
        assert "gateway" in stats

    def test_gateway_metrics_parse_with_backend_labels(self, fleet_pair):
        servers, gateway = fleet_pair
        with RemoteCompileService(gateway.url, backoff=0.01) as client:
            client.compile(bv_circuit(5))
            client.compile(bv_circuit(5))
            body = client.metrics()
        types, samples = parse_prometheus(body)
        assert types["caqr_gateway_backend_requests_total"] == "counter"
        assert types["caqr_gateway_backends_up"] == "gauge"
        assert sample_value(samples, "caqr_gateway_backends_up") == 2
        served = [
            labels["backend"]
            for name, labels, _ in samples
            if name == "caqr_gateway_backend_requests_total"
        ]
        assert set(served) <= {h.url for h in servers}
        for url in {h.url for h in servers}:
            assert (
                sample_value(samples, "caqr_gateway_backend_up", backend=url)
                == 1
            )

    def test_invalidate_broadcasts(self, fleet_pair):
        servers, gateway = fleet_pair
        with RemoteCompileService(gateway.url, backoff=0.01) as client:
            report = client.compile(bv_circuit(5))
            assert not report.from_cache
            request = CompileRequest(target=bv_circuit(5))
            assert client.invalidate(request.fingerprint())
            # entry is gone on every backend: the next compile is cold
            again = client.compile(bv_circuit(5))
            assert not again.from_cache

    def test_batch_through_gateway(self, fleet_pair):
        _, gateway = fleet_pair
        requests = [CompileRequest(target=bv_circuit(w)) for w in (3, 4, 5)]
        with RemoteCompileService(gateway.url, backoff=0.01) as client:
            reports = client.compile_batch(requests)
            direct = [client.compile_request(r) for r in requests]
        assert len(reports) == 3
        for batch_report, single in zip(reports, direct):
            assert batch_report.metrics == single.metrics

    def test_duplicate_backends_rejected(self):
        from repro.service import GatewayServer

        with pytest.raises(ServiceError):
            GatewayServer(["http://a:1", "http://a:1"])
        with pytest.raises(ServiceError):
            GatewayServer([])

    def test_failed_sub_batch_retries_on_next_replica(self):
        """A sub-batch whose whole owner-first walk fails is retried once
        (skipping the failing backend) before the error surfaces, and the
        retry is counted as ``batch_retries``."""
        import http.client
        import json

        from repro.service.net.wire import WIRE_SCHEMA_VERSION, request_to_wire

        stubs = [_start_flaky_batch_backend() for _ in range(2)]
        urls = [f"http://127.0.0.1:{server.server_address[1]}" for server, _ in stubs]
        gateway = start_gateway_thread(backends=urls, probe_interval=600.0)
        try:
            envelope = {
                "schema": WIRE_SCHEMA_VERSION,
                "requests": [
                    request_to_wire(CompileRequest(target=bv_circuit(4)))
                ],
                "parallel": False,
            }
            host, port = gateway.url.split("//")[1].split(":")
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            conn.request(
                "POST",
                "/v1/compile_batch",
                json.dumps(envelope).encode(),
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            # both stubs fail their first batch call, so the owner-first
            # walk dies twice; the retry pass lands on a now-warmed stub
            assert response.status == 200
            assert payload["results"] == [{"stub": 0}]
            assert gateway.gateway.stats.counters.get("batch_retries") == 1
            calls = sum(state["batch_calls"] for _, state in stubs)
            assert calls == 3
        finally:
            gateway.stop()
            for server, _ in stubs:
                server.shutdown()
                server.server_close()


class TestPeerFill:
    def test_rehomed_key_fills_from_previous_holder(self):
        servers = [
            start_server_thread(service=CompileService()) for _ in range(2)
        ]
        urls = [h.url for h in servers]
        # long probe interval: the test drives membership by hand
        gateway = start_gateway_thread(backends=urls, probe_interval=600.0)
        try:
            ring = HashRing(urls)
            # a circuit whose full-ring owner is a specific member; with
            # bv widths 3..16 both members own at least one key
            by_owner = {}
            for width in range(3, 17):
                request = CompileRequest(target=bv_circuit(width))
                rk = ring_key(request.shard(), request.fingerprint())
                by_owner.setdefault(ring.owner(rk), width)
                if len(by_owner) == 2:
                    break
            assert len(by_owner) == 2
            owner_url = urls[0]
            other_url = urls[1]
            width = by_owner[owner_url]

            # take the real owner out of the ring: three failures.
            # Timestamps must be real monotonic time — the prober
            # compares next_probe against time.monotonic(), and a fake
            # epoch would make the downed member instantly due for a
            # re-probe that rejoins it mid-test.
            for _ in range(3):
                gateway.gateway.fleet.record_failure(
                    owner_url, time.monotonic()
                )
            assert list(gateway.gateway.fleet.up_members()) == [other_url]

            with RemoteCompileService(gateway.url, backoff=0.01) as client:
                cold = client.compile(bv_circuit(width))
                assert not cold.from_cache  # compiled on the stand-in

                # the real owner rejoins; the key re-homes to it
                gateway.gateway.fleet.record_success(
                    owner_url, time.monotonic()
                )
                warm = client.compile(bv_circuit(width))
                assert warm.from_cache
                assert warm.metrics == cold.metrics

            # served via peer fill, not a second compile
            assert gateway.gateway.stats.counters.get("peer_fills", 0) == 1
            misses = sum(
                h.server.service.stats.counters.get("misses", 0)
                for h in servers
            )
            assert misses == 1
            # the new owner now holds the entry: its cache was filled
            owner_handle = servers[urls.index(owner_url)]
            assert (
                owner_handle.server.service.stats.counters.get(
                    "cache_fills", 0
                )
                == 1
            )
        finally:
            gateway.stop()
            for handle in servers:
                handle.stop()


class TestAuth:
    def test_server_requires_token(self):
        handle = start_server_thread(
            service=CompileService(), auth_token="s3cret"
        )
        try:
            with RemoteCompileService(handle.url, backoff=0.01) as anon:
                # health stays open for load-balancer probes
                assert anon.health()["status"] in ("ok", "draining")
                with pytest.raises(RemoteServiceError) as err:
                    anon.compile(bv_circuit(5))
                assert err.value.code == "unauthorized"
            with RemoteCompileService(
                handle.url, token="s3cret", backoff=0.01
            ) as authed:
                assert not authed.compile(bv_circuit(5)).from_cache
        finally:
            handle.stop()

    def test_gateway_passes_client_token_through(self):
        server = start_server_thread(
            service=CompileService(), auth_token="s3cret"
        )
        gateway = start_gateway_thread(
            backends=[server.url], auth_token="s3cret", probe_interval=0.2
        )
        try:
            with RemoteCompileService(gateway.url, backoff=0.01) as anon:
                with pytest.raises(RemoteServiceError) as err:
                    anon.compile(bv_circuit(5))
                assert err.value.code == "unauthorized"
            with RemoteCompileService(
                gateway.url, token="s3cret", backoff=0.01
            ) as authed:
                report = authed.compile(bv_circuit(5))
                assert not report.from_cache
        finally:
            gateway.stop()
            server.stop()

    def test_gateway_backend_token_override(self):
        server = start_server_thread(
            service=CompileService(), auth_token="backend-only"
        )
        gateway = start_gateway_thread(
            backends=[server.url],
            backend_token="backend-only",
            probe_interval=0.2,
        )
        try:
            # the gateway itself is open; it authenticates to the backend
            with RemoteCompileService(gateway.url, backoff=0.01) as client:
                assert not client.compile(bv_circuit(5)).from_cache
        finally:
            gateway.stop()
            server.stop()

    def test_env_var_supplies_token(self, monkeypatch):
        monkeypatch.setenv("CAQR_AUTH_TOKEN", "from-env")
        handle = start_server_thread(service=CompileService())
        try:
            assert handle.server.auth_token == "from-env"
            with RemoteCompileService(handle.url, backoff=0.01) as client:
                assert client.token == "from-env"
                assert not client.compile(bv_circuit(5)).from_cache
        finally:
            handle.stop()


class TestTLS:
    def test_server_tls_roundtrip(self):
        handle = start_server_thread(
            service=CompileService(), tls_cert=CERT, tls_key=KEY
        )
        try:
            assert handle.url.startswith("https://")
            with RemoteCompileService(
                handle.url, tls_ca=CERT, backoff=0.01
            ) as client:
                assert client.health()["status"] == "ok"
                report = client.compile(bv_circuit(5))
                assert not report.from_cache
        finally:
            handle.stop()

    def test_gateway_tls_listener_and_tls_backend(self):
        server = start_server_thread(
            service=CompileService(), tls_cert=CERT, tls_key=KEY
        )
        gateway = start_gateway_thread(
            backends=[server.url],
            tls_cert=CERT,
            tls_key=KEY,
            backend_ca=CERT,
            probe_interval=0.2,
        )
        try:
            assert gateway.url.startswith("https://")
            with RemoteCompileService(
                gateway.url, tls_ca=CERT, backoff=0.01
            ) as client:
                first = client.compile(bv_circuit(5))
                second = client.compile(bv_circuit(5))
            assert not first.from_cache and second.from_cache
        finally:
            gateway.stop()
            server.stop()

    def test_mismatched_tls_args_rejected(self):
        from repro.service import CompileServer

        with pytest.raises(ServiceError):
            CompileServer(CompileService(), tls_cert=CERT)

    def test_untrusted_cert_rejected_and_insecure_escape_hatch(self):
        handle = start_server_thread(
            service=CompileService(), tls_cert=CERT, tls_key=KEY
        )
        try:
            with RemoteCompileService(
                handle.url, backoff=0.01, retries=0
            ) as strict:
                with pytest.raises(RemoteServiceError):
                    strict.health()
            with RemoteCompileService(
                handle.url, tls_insecure=True, backoff=0.01
            ) as lax:
                assert lax.health()["status"] == "ok"
        finally:
            handle.stop()
