"""Cache-key contract: what keeps a fingerprint stable, what invalidates it."""

import networkx as nx
import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import ServiceError
from repro.hardware import ibm_mumbai, scaled_heavy_hex_backend
from repro.service import (
    CALIB_BANDS_ENV,
    backend_digest,
    band_value,
    banded_backend_digest,
    circuit_digest,
    circuit_normal_form,
    graph_digest,
    request_fingerprint,
    resolve_calib_bands,
)
from repro.workloads import bv_circuit, random_graph


class TestCircuitDigest:
    def test_stable_across_rebuilds(self):
        assert circuit_digest(bv_circuit(6)) == circuit_digest(bv_circuit(6))

    def test_gate_change_invalidates(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.x(0)
        assert circuit_digest(a) != circuit_digest(b)

    def test_wire_change_invalidates(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(1)
        assert circuit_digest(a) != circuit_digest(b)

    def test_param_change_invalidates(self):
        a = QuantumCircuit(1)
        a.rz(0.5, 0)
        b = QuantumCircuit(1)
        b.rz(0.5 + 1e-15, 0)
        assert circuit_digest(a) != circuit_digest(b)

    def test_unused_width_is_significant(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(3)
        b.h(0)
        assert circuit_digest(a) != circuit_digest(b)

    def test_condition_and_label_are_significant(self):
        a = QuantumCircuit(1, 1)
        a.x(0)
        b = QuantumCircuit(1, 1)
        b.x(0).c_if(0, 1)
        c = QuantumCircuit(1, 1)
        c.x(0).label = "tagged"
        digests = {circuit_digest(a), circuit_digest(b)}
        c_digest = circuit_digest(c)
        assert len(digests) == 2 and c_digest not in digests

    def test_normal_form_is_line_per_instruction(self):
        circuit = bv_circuit(4)
        lines = circuit_normal_form(circuit).strip().split("\n")
        assert lines[0] == f"qubits {circuit.num_qubits}"
        assert len(lines) == 2 + len(circuit.data)


class TestGraphDigest:
    def test_node_order_independent(self):
        a = nx.Graph([(0, 1), (1, 2)])
        b = nx.Graph([(1, 2), (1, 0)])
        assert graph_digest(a) == graph_digest(b)

    def test_edge_change_invalidates(self):
        assert graph_digest(nx.path_graph(4)) != graph_digest(nx.cycle_graph(4))

    def test_weights_are_significant(self):
        a = nx.Graph()
        a.add_edge(0, 1, weight=1.0)
        b = nx.Graph()
        b.add_edge(0, 1, weight=2.0)
        assert graph_digest(a) != graph_digest(b)


class TestBackendDigest:
    def test_none_backend(self):
        assert backend_digest(None) is None

    def test_stable_for_same_snapshot(self):
        assert backend_digest(ibm_mumbai()) == backend_digest(ibm_mumbai())

    def test_calibration_drift_invalidates(self):
        fresh = ibm_mumbai()
        before = backend_digest(fresh)
        edge = next(iter(fresh.calibration.cx_error))
        fresh.calibration.cx_error[edge] *= 1.001
        assert backend_digest(fresh) != before

    def test_different_topology_invalidates(self):
        assert backend_digest(ibm_mumbai()) != backend_digest(
            scaled_heavy_hex_backend(2)
        )


def _band_center(band: int, bands: int) -> float:
    """The log-scale midpoint of *band* with *bands* bands per decade."""
    return 10.0 ** ((band + 0.5) / bands)


def _band_edge(band: int, bands: int) -> float:
    """The upper boundary of *band* (first value of the next band)."""
    return 10.0 ** ((band + 1) / bands)


class TestBandValue:
    def test_center_values_share_a_band(self):
        center = _band_center(-5, 2)  # ~0.0056, a plausible CX error
        assert band_value(center, 2) == band_value(center * 1.05, 2) == -5

    def test_boundary_crossing_changes_band(self):
        edge = _band_edge(-5, 2)
        assert band_value(edge * 0.999, 2) != band_value(edge * 1.001, 2)

    def test_wider_bands_absorb_more_drift(self):
        # a 2.5x swing crosses a bands=4 boundary but not a bands=1 one
        assert band_value(1e-3, 1) == band_value(2.5e-3, 1)
        assert band_value(1e-3, 4) != band_value(2.5e-3, 4)

    def test_non_positive_and_non_finite_pass_through_exact(self):
        assert band_value(0.0, 2) == repr(0.0)
        assert band_value(-1.5, 2) == repr(-1.5)
        assert band_value(float("nan"), 2) == repr(float("nan"))
        assert band_value(float("inf"), 2) == repr(float("inf"))


class TestResolveCalibBands:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CALIB_BANDS_ENV, "8")
        assert resolve_calib_bands(3) == 3

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(CALIB_BANDS_ENV, "4")
        assert resolve_calib_bands(None) == 4

    def test_off_spellings_collapse(self, monkeypatch):
        monkeypatch.delenv(CALIB_BANDS_ENV, raising=False)
        assert resolve_calib_bands(None) is None
        assert resolve_calib_bands(0) is None
        monkeypatch.setenv(CALIB_BANDS_ENV, "0")
        assert resolve_calib_bands(None) is None

    def test_bad_values_raise(self, monkeypatch):
        with pytest.raises(ServiceError):
            resolve_calib_bands(-1)
        with pytest.raises(ServiceError):
            resolve_calib_bands("two")
        monkeypatch.setenv(CALIB_BANDS_ENV, "not-a-number")
        with pytest.raises(ServiceError):
            resolve_calib_bands(None)


class TestBandedBackendDigest:
    def test_none_backend(self):
        assert banded_backend_digest(None, 2) is None

    def test_banding_off_equals_exact_digest(self):
        backend = ibm_mumbai()
        exact = backend_digest(backend)
        assert banded_backend_digest(backend, None) == exact
        assert banded_backend_digest(backend, 0) == exact

    def test_in_band_drift_shares_digest(self):
        bands = 2
        a, b = ibm_mumbai(), ibm_mumbai()
        edge = next(iter(a.calibration.cx_error))
        # pin the value to a band center in both snapshots, then drift
        # one of them within the band
        band = band_value(a.calibration.cx_error[edge], bands)
        a.calibration.cx_error[edge] = _band_center(band, bands)
        b.calibration.cx_error[edge] = _band_center(band, bands) * 1.05
        assert backend_digest(a) != backend_digest(b)
        assert banded_backend_digest(a, bands) == banded_backend_digest(b, bands)

    def test_cross_boundary_drift_invalidates(self):
        bands = 2
        a, b = ibm_mumbai(), ibm_mumbai()
        edge = next(iter(a.calibration.cx_error))
        band = band_value(a.calibration.cx_error[edge], bands)
        boundary = _band_edge(band, bands)
        a.calibration.cx_error[edge] = boundary * 0.999
        b.calibration.cx_error[edge] = boundary * 1.001
        assert banded_backend_digest(a, bands) != banded_backend_digest(b, bands)

    def test_band_count_feeds_the_digest(self):
        backend = ibm_mumbai()
        assert banded_backend_digest(backend, 2) != banded_backend_digest(backend, 4)

    def test_duration_drift_always_invalidates(self):
        # durations are not banded: any change must produce a new digest
        a, b = ibm_mumbai(), ibm_mumbai()
        edge = next(iter(a.calibration.cx_duration))
        b.calibration.cx_duration[edge] += 1
        assert banded_backend_digest(a, 2) != banded_backend_digest(b, 2)


class TestRequestFingerprint:
    def test_semantic_knobs_invalidate(self):
        circuit = bv_circuit(5)
        base = request_fingerprint(circuit)
        assert request_fingerprint(circuit, mode="max_reuse") != base
        assert request_fingerprint(circuit, qubit_limit=3) != base
        assert request_fingerprint(circuit, reset_style="builtin") != base
        assert request_fingerprint(circuit, seed=12) != base
        assert request_fingerprint(circuit, auto_commuting=False) != base
        assert request_fingerprint(circuit, backend=ibm_mumbai()) != base

    def test_graph_and_circuit_targets_never_collide(self):
        # same digest text in a different kind must yield a different key
        graph = random_graph(6, 0.4, seed=3)
        circuit = bv_circuit(6)
        assert request_fingerprint(graph) != request_fingerprint(circuit)

    @pytest.mark.parametrize("mode", ["min_depth", "max_reuse", "min_swap"])
    def test_repeatable(self, mode):
        circuit = bv_circuit(4)
        backend = ibm_mumbai()
        assert request_fingerprint(circuit, backend, mode=mode) == (
            request_fingerprint(circuit, backend, mode=mode)
        )

    def test_banding_off_preserves_legacy_keys(self, monkeypatch):
        # the calib_bands payload entry only appears when banding is on,
        # so existing cache entries stay addressable
        monkeypatch.delenv(CALIB_BANDS_ENV, raising=False)
        circuit = bv_circuit(5)
        backend = ibm_mumbai()
        legacy = request_fingerprint(circuit, backend)
        assert request_fingerprint(circuit, backend, calib_bands=0) == legacy
        assert request_fingerprint(circuit, backend, calib_bands=2) != legacy

    def test_in_band_drift_shares_fingerprint(self):
        circuit = bv_circuit(5)
        a, b = ibm_mumbai(), ibm_mumbai()
        edge = next(iter(a.calibration.cx_error))
        band = band_value(a.calibration.cx_error[edge], 2)
        a.calibration.cx_error[edge] = _band_center(band, 2)
        b.calibration.cx_error[edge] = _band_center(band, 2) * 1.05
        assert request_fingerprint(circuit, a) != request_fingerprint(circuit, b)
        assert request_fingerprint(circuit, a, calib_bands=2) == (
            request_fingerprint(circuit, b, calib_bands=2)
        )

    def test_env_bands_apply_when_unset(self, monkeypatch):
        circuit = bv_circuit(5)
        backend = ibm_mumbai()
        explicit = request_fingerprint(circuit, backend, calib_bands=2)
        monkeypatch.setenv(CALIB_BANDS_ENV, "2")
        assert request_fingerprint(circuit, backend) == explicit
