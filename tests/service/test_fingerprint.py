"""Cache-key contract: what keeps a fingerprint stable, what invalidates it."""

import networkx as nx
import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import ibm_mumbai, scaled_heavy_hex_backend
from repro.service import (
    backend_digest,
    circuit_digest,
    circuit_normal_form,
    graph_digest,
    request_fingerprint,
)
from repro.workloads import bv_circuit, random_graph


class TestCircuitDigest:
    def test_stable_across_rebuilds(self):
        assert circuit_digest(bv_circuit(6)) == circuit_digest(bv_circuit(6))

    def test_gate_change_invalidates(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.x(0)
        assert circuit_digest(a) != circuit_digest(b)

    def test_wire_change_invalidates(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(1)
        assert circuit_digest(a) != circuit_digest(b)

    def test_param_change_invalidates(self):
        a = QuantumCircuit(1)
        a.rz(0.5, 0)
        b = QuantumCircuit(1)
        b.rz(0.5 + 1e-15, 0)
        assert circuit_digest(a) != circuit_digest(b)

    def test_unused_width_is_significant(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(3)
        b.h(0)
        assert circuit_digest(a) != circuit_digest(b)

    def test_condition_and_label_are_significant(self):
        a = QuantumCircuit(1, 1)
        a.x(0)
        b = QuantumCircuit(1, 1)
        b.x(0).c_if(0, 1)
        c = QuantumCircuit(1, 1)
        c.x(0).label = "tagged"
        digests = {circuit_digest(a), circuit_digest(b)}
        c_digest = circuit_digest(c)
        assert len(digests) == 2 and c_digest not in digests

    def test_normal_form_is_line_per_instruction(self):
        circuit = bv_circuit(4)
        lines = circuit_normal_form(circuit).strip().split("\n")
        assert lines[0] == f"qubits {circuit.num_qubits}"
        assert len(lines) == 2 + len(circuit.data)


class TestGraphDigest:
    def test_node_order_independent(self):
        a = nx.Graph([(0, 1), (1, 2)])
        b = nx.Graph([(1, 2), (1, 0)])
        assert graph_digest(a) == graph_digest(b)

    def test_edge_change_invalidates(self):
        assert graph_digest(nx.path_graph(4)) != graph_digest(nx.cycle_graph(4))

    def test_weights_are_significant(self):
        a = nx.Graph()
        a.add_edge(0, 1, weight=1.0)
        b = nx.Graph()
        b.add_edge(0, 1, weight=2.0)
        assert graph_digest(a) != graph_digest(b)


class TestBackendDigest:
    def test_none_backend(self):
        assert backend_digest(None) is None

    def test_stable_for_same_snapshot(self):
        assert backend_digest(ibm_mumbai()) == backend_digest(ibm_mumbai())

    def test_calibration_drift_invalidates(self):
        fresh = ibm_mumbai()
        before = backend_digest(fresh)
        edge = next(iter(fresh.calibration.cx_error))
        fresh.calibration.cx_error[edge] *= 1.001
        assert backend_digest(fresh) != before

    def test_different_topology_invalidates(self):
        assert backend_digest(ibm_mumbai()) != backend_digest(
            scaled_heavy_hex_backend(2)
        )


class TestRequestFingerprint:
    def test_semantic_knobs_invalidate(self):
        circuit = bv_circuit(5)
        base = request_fingerprint(circuit)
        assert request_fingerprint(circuit, mode="max_reuse") != base
        assert request_fingerprint(circuit, qubit_limit=3) != base
        assert request_fingerprint(circuit, reset_style="builtin") != base
        assert request_fingerprint(circuit, seed=12) != base
        assert request_fingerprint(circuit, auto_commuting=False) != base
        assert request_fingerprint(circuit, backend=ibm_mumbai()) != base

    def test_graph_and_circuit_targets_never_collide(self):
        # same digest text in a different kind must yield a different key
        graph = random_graph(6, 0.4, seed=3)
        circuit = bv_circuit(6)
        assert request_fingerprint(graph) != request_fingerprint(circuit)

    @pytest.mark.parametrize("mode", ["min_depth", "max_reuse", "min_swap"])
    def test_repeatable(self, mode):
        circuit = bv_circuit(4)
        backend = ibm_mumbai()
        assert request_fingerprint(circuit, backend, mode=mode) == (
            request_fingerprint(circuit, backend, mode=mode)
        )
