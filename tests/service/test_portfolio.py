"""Portfolio compile service: determinism, objectives, error channel.

The portfolio's contract is that racing is an *engine* concern: the
winning report is a pure function of (target, backend, knobs, objective)
— worker count, scheduling order, and the machine it runs on must never
change the result.  These tests pin that, plus the per-strategy error
channel (a poisoned strategy loses the race, it does not sink it), the
anytime-budget fallback, the win-rate stats, and remote==local through
the wire protocol.
"""

import json

import pytest

from repro.circuit.random import random_circuit
from repro.compile_api import caqr_compile
from repro.exceptions import ReuseError
from repro.circuit.circuit import QuantumCircuit
from repro.hardware import ibm_mumbai
from repro.service import (
    CompileService,
    PortfolioCompileService,
    StrategySpec,
)
from repro.service.stats import ServiceStats
from repro.workloads import bv_circuit

SEMANTIC_FIELDS = [
    "mode",
    "metrics",
    "baseline_metrics",
    "reuse_beneficial",
    "qubit_saving",
    "strategy",
    "strategy_errors",
    "optimality_gap",
    "exact_optimal",
]
# strategy_timings are wall-clock — observability only, like the
# route-stats timers, and deliberately outside the determinism contract


def _sample_circuit(seed: int) -> QuantumCircuit:
    return random_circuit(
        3 + seed % 4,
        num_gates=8 + (seed * 5) % 10,
        seed=seed,
        two_qubit_fraction=0.5,
        measure=True,
    )


def _reuse_chain(length: int) -> QuantumCircuit:
    circuit = QuantumCircuit(length, length)
    for i in range(length - 1):
        circuit.cx(i, i + 1)
    for i in range(length):
        circuit.measure(i, i)
    return circuit


def _assert_same_report(a, b, context):
    assert a.circuit.data == b.circuit.data, f"{context}: circuit drifted"
    for name in SEMANTIC_FIELDS:
        assert getattr(a, name) == getattr(b, name), (
            f"{context}: field {name!r} drifted"
        )


# -- determinism ---------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_worker_count_never_changes_the_winner(seed):
    """workers=1 (serial path) and workers=4 (process pool) must return
    bit-identical reports — the portfolio races, it never gambles."""
    circuit = _sample_circuit(seed)
    serial = caqr_compile(
        circuit, strategy="portfolio", objective="qubits",
        parallel=False, portfolio_workers=1,
    )
    pooled = caqr_compile(
        circuit, strategy="portfolio", objective="qubits",
        parallel=True, portfolio_workers=4,
    )
    _assert_same_report(serial, pooled, f"seed={seed}")
    assert serial.strategy_timings.keys() == pooled.strategy_timings.keys()


def test_repeated_compiles_are_identical():
    circuit = _sample_circuit(1)
    first = caqr_compile(circuit, strategy="portfolio", parallel=False)
    second = caqr_compile(circuit, strategy="portfolio", parallel=False)
    _assert_same_report(first, second, "repeat")


# -- SR lane seed diversity ----------------------------------------------------


def test_sr_lanes_derive_distinct_deterministic_seed_bases():
    """Each SR lane gets its own fingerprint-derived hint-seed stream,
    and the derivation is a pure function of (request, lane name)."""
    from repro.service.portfolio import _sr_lane_seed_base
    from repro.service.service import CompileRequest

    def request():
        return CompileRequest(
            target=bv_circuit(4), backend=ibm_mumbai(), mode="min_swap"
        )

    trials_base = _sr_lane_seed_base(request(), "sr-trials-5")
    esp_base = _sr_lane_seed_base(request(), "sr-esp")
    assert trials_base != esp_base
    # deterministic across replicas of the same request
    assert trials_base == _sr_lane_seed_base(request(), "sr-trials-5")
    # and sensitive to the request fingerprint, not just the lane name
    other = CompileRequest(
        target=bv_circuit(5), backend=ibm_mumbai(), mode="min_swap"
    )
    assert trials_base != _sr_lane_seed_base(other, "sr-trials-5")


def test_sr_seed_diversity_keeps_serial_pooled_determinism():
    """The per-lane seed streams must not break the race contract:
    serial and pooled min_swap races return bit-identical reports."""
    circuit = bv_circuit(4)
    serial = caqr_compile(
        circuit, backend=ibm_mumbai(), mode="min_swap",
        strategy="portfolio", objective="qubits",
        parallel=False, portfolio_workers=1,
    )
    pooled = caqr_compile(
        circuit, backend=ibm_mumbai(), mode="min_swap",
        strategy="portfolio", objective="qubits",
        parallel=True, portfolio_workers=4,
    )
    _assert_same_report(serial, pooled, "sr-seeded race")


# -- objectives ----------------------------------------------------------------


def test_objective_changes_the_winner():
    """BV trades depth for width: the qubits objective must pick the
    deep 2-qubit circuit, the depth objective the shallow wide one."""
    circuit = bv_circuit(4)
    by_qubits = caqr_compile(
        circuit, strategy="portfolio", objective="qubits", parallel=False
    )
    by_depth = caqr_compile(
        circuit, strategy="portfolio", objective="depth", parallel=False
    )
    assert by_qubits.strategy != by_depth.strategy
    assert by_qubits.metrics.qubits_used < by_depth.metrics.qubits_used
    assert by_qubits.metrics.depth > by_depth.metrics.depth


def test_qubits_objective_matches_the_oracle():
    """With the exact tier in the race, the qubits objective achieves the
    proven optimum (gap 0) on an oracle-solvable circuit."""
    report = caqr_compile(
        bv_circuit(5), strategy="portfolio", objective="qubits", parallel=False
    )
    assert report.exact_optimal is True
    assert report.optimality_gap == 0


def test_est_error_objective_needs_backend():
    with pytest.raises(ReuseError, match="backend"):
        caqr_compile(
            bv_circuit(4), strategy="portfolio", objective="est_error",
            parallel=False,
        )


def test_est_error_objective_runs_with_backend():
    report = caqr_compile(
        bv_circuit(4), backend=ibm_mumbai(), mode="min_swap",
        strategy="portfolio", objective="est_error", parallel=False,
    )
    assert report.strategy in report.strategy_timings
    assert report.metrics.qubits_used >= 1


def test_unknown_objective_rejected():
    with pytest.raises(ReuseError, match="objective"):
        PortfolioCompileService().compile(
            bv_circuit(4), objective="speed", parallel=False
        )


def test_objective_requires_portfolio_strategy():
    with pytest.raises(ReuseError, match="portfolio"):
        caqr_compile(bv_circuit(4), objective="qubits")


# -- the exact tier's budget semantics -----------------------------------------


def test_budget_cutoff_falls_back_to_greedy():
    """A starved oracle returns best-so-far (optimal=False); the greedy
    engines still win the race and the report says the bound is
    unproven — never a silent wrong 'optimal'."""
    circuit = _reuse_chain(8)
    service = PortfolioCompileService(exact_max_nodes=2)
    report = service.compile(
        circuit, mode="max_reuse", objective="qubits", parallel=False
    )
    assert report.exact_optimal is False
    assert report.optimality_gap is None  # unproven bound -> no gap claim
    assert report.strategy != "exact"  # greedy reaches 2 qubits; cut oracle cannot
    assert report.metrics.qubits_used == 2
    assert service.stats.counters["portfolio_oracle_budget_cut"] == 1


def test_wide_circuits_skip_the_exact_tier():
    service = PortfolioCompileService(exact_max_qubits=3)
    report = service.compile(bv_circuit(6), objective="qubits", parallel=False)
    assert report.exact_optimal is None
    assert report.optimality_gap is None
    assert "exact" not in report.strategy_timings


# -- error channel -------------------------------------------------------------


def test_poisoned_strategy_does_not_sink_the_portfolio():
    """One strategy raising inside the pool surfaces as a per-strategy
    error while the race completes on the survivors."""
    service = PortfolioCompileService(
        strategies=[
            StrategySpec.make("greedy", "caqr"),
            StrategySpec.make("poison", "caqr", mode="definitely-bogus"),
        ]
    )
    report = service.compile(bv_circuit(4), objective="qubits", parallel=False)
    assert report.strategy == "greedy"
    assert "poison" in report.strategy_errors
    assert "bogus" in report.strategy_errors["poison"]
    assert service.stats.counters["portfolio_errors:poison"] == 1


def test_all_strategies_failing_raises_with_details():
    service = PortfolioCompileService(
        strategies=[StrategySpec.make("poison", "caqr", mode="bogus")]
    )
    with pytest.raises(ReuseError, match="poison"):
        service.compile(bv_circuit(4), objective="qubits", parallel=False)


def test_unknown_strategy_kind_is_an_error_not_a_crash():
    service = PortfolioCompileService(
        strategies=[
            StrategySpec.make("greedy", "caqr"),
            StrategySpec.make("mystery", "quantum-annealing"),
        ]
    )
    report = service.compile(bv_circuit(4), objective="qubits", parallel=False)
    assert report.strategy == "greedy"
    assert "unknown strategy kind" in report.strategy_errors["mystery"]


# -- win-rate stats ------------------------------------------------------------


def test_win_rate_accounting():
    stats = ServiceStats()
    service = PortfolioCompileService(stats=stats)
    first = service.compile(bv_circuit(4), objective="qubits", parallel=False)
    second = service.compile(bv_circuit(5), objective="qubits", parallel=False)
    assert stats.counters["portfolio_compiles"] == 2
    wins = {
        name.split(":", 1)[1]: count
        for name, count in stats.counters.items()
        if name.startswith("portfolio_wins:")
    }
    assert sum(wins.values()) == 2
    assert wins.get(first.strategy, 0) >= 1
    assert wins.get(second.strategy, 0) >= 1
    # every raced strategy got a timer sample
    for name in first.strategy_timings:
        assert f"portfolio_strategy:{name}" in stats.timers


def test_win_rates_reorder_submission_not_results():
    """A service with skewed win history must still return the same
    report as a fresh one — scheduling order is not semantics."""
    circuit = _sample_circuit(2)
    fresh = PortfolioCompileService()
    skewed = PortfolioCompileService()
    skewed.stats.count("portfolio_compiles", 10)
    skewed.stats.count("portfolio_wins:qs-narrow", 10)
    _assert_same_report(
        fresh.compile(circuit, objective="qubits", parallel=False),
        skewed.compile(circuit, objective="qubits", parallel=False),
        "win-rate skew",
    )


# -- service + wire integration ------------------------------------------------


def test_portfolio_through_compile_service_cache():
    circuit = _sample_circuit(4)
    cold = caqr_compile(
        circuit, strategy="portfolio", objective="qubits", parallel=False
    )
    service = CompileService()
    primed = service.compile(
        circuit, strategy="portfolio", objective="qubits", parallel=False
    )
    warm = service.compile(
        circuit, strategy="portfolio", objective="qubits", parallel=False
    )
    assert primed.from_cache is False
    assert warm.from_cache is True
    _assert_same_report(primed, cold, "primed")
    _assert_same_report(warm, cold, "warm")
    # the cache replays the primed race exactly, timers included
    assert warm.strategy_timings == primed.strategy_timings


def test_portfolio_and_auto_have_distinct_cache_keys():
    from repro.service.service import CompileRequest

    circuit = bv_circuit(4)
    keys = {
        CompileRequest(target=circuit).fingerprint(),
        CompileRequest(target=circuit, strategy="portfolio").fingerprint(),
        CompileRequest(
            target=circuit, strategy="portfolio", objective="depth"
        ).fingerprint(),
    }
    assert len(keys) == 3
    # worker count is an engine knob: same key either way
    assert (
        CompileRequest(
            target=circuit, strategy="portfolio", portfolio_workers=7
        ).fingerprint()
        == CompileRequest(target=circuit, strategy="portfolio").fingerprint()
    )


def test_remote_equals_local_portfolio():
    """The portfolio race behind a server returns the same winner, gap,
    and circuit as the local path — every new report field crosses the
    wire losslessly."""
    from repro.service import RemoteCompileService, start_server_thread

    circuit = _sample_circuit(6)
    handle = start_server_thread(service=CompileService())
    try:
        with RemoteCompileService(handle.url, timeout=180) as client:
            remote = client.compile(
                circuit, strategy="portfolio", objective="qubits",
                parallel=False,
            )
            warm = client.compile(
                circuit, strategy="portfolio", objective="qubits",
                parallel=False,
            )
        local = caqr_compile(
            circuit, strategy="portfolio", objective="qubits", parallel=False
        )
        assert remote.from_cache is False
        assert warm.from_cache is True
        _assert_same_report(remote, local, "remote miss")
        _assert_same_report(warm, local, "remote hit")
    finally:
        handle.stop()


def test_unknown_strategy_rejected_at_the_api():
    with pytest.raises(ReuseError, match="strategy"):
        caqr_compile(bv_circuit(4), strategy="racing")


# -- persistent pool + persisted win-rate state --------------------------------


def test_persistent_pool_race_matches_serial():
    """The long-lived worker pool races identically to the serial path,
    and the second race on the same request re-ships nothing."""
    circuit = _sample_circuit(3)
    serial = PortfolioCompileService(max_workers=1)
    pooled = PortfolioCompileService(max_workers=2, workers_mode="persistent")
    try:
        base = serial.compile(circuit, objective="qubits", parallel=False)
        fast = pooled.compile(circuit, objective="qubits", parallel=True)
        _assert_same_report(base, fast, "persistent pool")
        assert pooled.stats.counters["worker_pool_spawns"] == 1
        shipped = pooled.stats.counters["worker_records_shipped"]
        again = pooled.compile(circuit, objective="qubits", parallel=True)
        _assert_same_report(base, again, "persistent pool, warm lane")
        assert pooled.stats.counters["worker_pool_spawns"] == 1
        assert pooled.stats.counters["worker_records_shipped"] == shipped, (
            "a warm re-race must not re-ship the request record"
        )
    finally:
        serial.close()
        pooled.close()


def test_ephemeral_pool_race_matches_serial():
    circuit = _sample_circuit(4)
    serial = PortfolioCompileService(max_workers=1)
    pooled = PortfolioCompileService(max_workers=2, workers_mode="ephemeral")
    try:
        _assert_same_report(
            serial.compile(circuit, objective="qubits", parallel=False),
            pooled.compile(circuit, objective="qubits", parallel=True),
            "ephemeral pool",
        )
        assert "worker_pool_spawns" not in pooled.stats.counters
    finally:
        serial.close()
        pooled.close()


def test_win_rate_state_persists_across_restarts(tmp_path):
    state_path = str(tmp_path / "portfolio_state.json")
    first = PortfolioCompileService(max_workers=1, state_path=state_path)
    first.compile(bv_circuit(4), objective="qubits", parallel=False)
    first.compile(bv_circuit(5), objective="qubits", parallel=False)
    saved = {
        name: count
        for name, count in first.stats.counters.items()
        if name == "portfolio_compiles" or name.startswith("portfolio_wins:")
    }
    assert saved["portfolio_compiles"] == 2
    payload = json.loads((tmp_path / "portfolio_state.json").read_text())
    assert payload["schema"] == PortfolioCompileService._STATE_SCHEMA
    assert payload["counters"] == saved
    reborn = PortfolioCompileService(max_workers=1, state_path=state_path)
    for name, count in saved.items():
        assert reborn.stats.counters.get(name) == count
    assert reborn.stats.counters["portfolio_state_loads"] == 1
    first.close()
    reborn.close()


def test_corrupt_state_is_a_clean_cold_start(tmp_path):
    state_path = tmp_path / "portfolio_state.json"
    state_path.write_text("{this is not json")
    service = PortfolioCompileService(max_workers=1, state_path=str(state_path))
    assert "portfolio_state_loads" not in service.stats.counters
    service.compile(bv_circuit(4), objective="qubits", parallel=False)
    payload = json.loads(state_path.read_text())  # rewritten with good state
    assert payload["counters"]["portfolio_compiles"] == 1
    service.close()


def test_loaded_state_reorders_submission_not_results(tmp_path):
    state_path = tmp_path / "portfolio_state.json"
    state_path.write_text(
        json.dumps(
            {
                "schema": PortfolioCompileService._STATE_SCHEMA,
                "counters": {
                    "portfolio_compiles": 50,
                    "portfolio_wins:qs-narrow": 50,
                },
            }
        )
    )
    circuit = _sample_circuit(5)
    fresh = PortfolioCompileService(max_workers=1)
    loaded = PortfolioCompileService(max_workers=1, state_path=str(state_path))
    _assert_same_report(
        fresh.compile(circuit, objective="qubits", parallel=False),
        loaded.compile(circuit, objective="qubits", parallel=False),
        "persisted win-rate skew",
    )
    fresh.close()
    loaded.close()
