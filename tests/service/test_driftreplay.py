"""Drift-replay harness + banded shard/ring-key placement under drift."""

import pytest

from repro.exceptions import ServiceError
from repro.hardware import drift_series, get_device, ibm_mumbai
from repro.service import (
    CompileRequest,
    HashRing,
    band_value,
    replay_drift,
    ring_key,
)
from repro.workloads import bv_circuit

# the validated smoke configuration (scripts/drift_replay.py)
STEPS = 8
VOLATILITY = 0.01
BANDS = 2
DRIFT_SEED = 7


class TestReplayDrift:
    def test_banded_lane_lifts_hits_without_changing_decisions(self):
        result = replay_drift(
            bv_circuit(4),
            ibm_mumbai(),
            steps=STEPS,
            volatility=VOLATILITY,
            calib_bands=BANDS,
            seed=DRIFT_SEED,
        )
        assert result.banded_hits > result.exact_hits
        assert result.hit_uplift >= 5.0
        assert result.decision_changes == 0
        assert result.banded_shards < result.exact_shards
        # the exact lane misses every drifted snapshot by construction
        assert result.exact_hits == 0
        assert result.exact_misses == STEPS

    def test_result_is_deterministic(self):
        kwargs = dict(
            steps=4, volatility=VOLATILITY, calib_bands=BANDS, seed=DRIFT_SEED
        )
        a = replay_drift(bv_circuit(4), ibm_mumbai(), **kwargs)
        b = replay_drift(bv_circuit(4), ibm_mumbai(), **kwargs)
        assert (a.banded_hits, a.exact_hits, a.decision_changes) == (
            b.banded_hits,
            b.exact_hits,
            b.decision_changes,
        )
        assert a.esp_gaps == b.esp_gaps

    def test_banding_off_is_rejected(self):
        with pytest.raises(ServiceError):
            replay_drift(bv_circuit(4), ibm_mumbai(), steps=2, calib_bands=0)

    def test_summary_mentions_the_gates(self):
        result = replay_drift(
            bv_circuit(4),
            ibm_mumbai(),
            steps=3,
            volatility=VOLATILITY,
            calib_bands=BANDS,
            seed=DRIFT_SEED,
        )
        summary = result.summary()
        assert "uplift" in summary and "decision_changes" in summary


class TestBandedRingPlacement:
    """Gateway placement must not re-home in-band drifted snapshots.

    Regression for ``ring_key`` consuming the exact shard digest: before
    banding reached ``CompileRequest.shard()``, every calibration nudge
    produced a new shard and therefore a fresh consistent-hash owner,
    defeating the warm DiskCache on the member that held the entries.
    """

    def _request(self, backend, bands):
        return CompileRequest(
            target=bv_circuit(4), backend=backend, calib_bands=bands
        )

    @staticmethod
    def _in_band_snapshots(count):
        """Snapshots whose banded values provably never cross a boundary.

        Every banded calibration value is pinned to the centre of its
        log10 band, then wiggled by < 5 % per snapshot — with ``bands=2``
        a band spans ~3.16x, so a 1.78x excursion from the centre would
        be needed to escape.  (A random-walk series cannot promise this:
        any of the ~180 values may start arbitrarily close to a
        boundary.)
        """
        snapshots = []
        for index in range(count):
            snapshot = get_device("grid36")
            calibration = snapshot.calibration
            wiggle = 1.0 + 0.01 * index
            for mapping in (
                calibration.cx_error,
                calibration.readout_error,
                calibration.sq_error,
                calibration.t1_dt,
                calibration.t2_dt,
            ):
                for key, value in mapping.items():
                    band = band_value(value, BANDS)
                    centre = 10.0 ** ((band + 0.5) / BANDS)
                    mapping[key] = centre * wiggle
            snapshots.append(snapshot)
        return snapshots

    def test_in_band_drift_keeps_the_ring_owner(self):
        snapshots = self._in_band_snapshots(6)
        ring = HashRing([f"http://backend-{i}:80" for i in range(5)])
        banded_owners = set()
        exact_keys = set()
        for snapshot in snapshots:
            banded = self._request(snapshot, BANDS)
            exact = self._request(snapshot, 0)
            banded_owners.add(
                ring.owner(ring_key(banded.shard(), banded.fingerprint()))
            )
            exact_keys.add(ring_key(exact.shard(), exact.fingerprint()))
        # every in-band snapshot routes to the one member holding the
        # warm entries, while exact digests scatter a key per snapshot
        assert len(banded_owners) == 1
        assert len(exact_keys) == len(snapshots)

    def test_drifted_series_touches_fewer_owners_than_exact(self):
        snapshots = drift_series(
            get_device("grid36"), 6, volatility=0.005, seed=DRIFT_SEED
        )
        banded_keys = set()
        exact_keys = set()
        for snapshot in snapshots:
            banded = self._request(snapshot, BANDS)
            exact = self._request(snapshot, 0)
            banded_keys.add(ring_key(banded.shard(), banded.fingerprint()))
            exact_keys.add(ring_key(exact.shard(), exact.fingerprint()))
        assert len(banded_keys) < len(exact_keys)
        assert len(exact_keys) == len(snapshots)

    def test_band_width_feeds_the_placement_key(self):
        backend = get_device("grid36")
        a = self._request(backend, 2)
        b = self._request(backend, 4)
        assert a.shard() != b.shard()
