"""Cache tiers: LRU caps, disk persistence, corruption recovery."""

import os

import pytest

from repro.exceptions import ServiceError
from repro.service import DiskCache, MemoryCache, ServiceStats, TieredCache


class TestMemoryCache:
    def test_get_put_roundtrip(self):
        cache = MemoryCache()
        assert cache.get("k") is None
        cache.put("k", "payload")
        assert cache.get("k") == "payload"

    def test_entry_cap_evicts_lru(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", "3")
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert cache.stats.counters["evictions"] == 1

    def test_byte_cap_evicts(self):
        cache = MemoryCache(max_entries=100, max_bytes=10)
        cache.put("a", "xxxx")
        cache.put("b", "yyyy")
        cache.put("c", "zzzz")  # 12 bytes total -> a evicted
        assert cache.get("a") is None
        assert len(cache) == 2
        assert cache.total_bytes == 8

    def test_oversized_entry_not_cached(self):
        cache = MemoryCache(max_bytes=4)
        cache.put("big", "x" * 100)
        assert cache.get("big") is None
        assert len(cache) == 0

    def test_replacing_updates_bytes(self):
        cache = MemoryCache()
        cache.put("k", "aaaa")
        cache.put("k", "bb")
        assert cache.total_bytes == 2
        assert len(cache) == 1

    def test_invalid_caps_rejected(self):
        with pytest.raises(ServiceError):
            MemoryCache(max_entries=0)
        with pytest.raises(ServiceError):
            MemoryCache(max_bytes=0)

    def test_clear(self):
        cache = MemoryCache()
        cache.put("k", "v")
        cache.clear()
        assert cache.get("k") is None
        assert cache.total_bytes == 0


class TestDiskCache:
    def test_roundtrip_across_instances(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("deadbeef", "payload")
        again = DiskCache(str(tmp_path))
        assert again.get("deadbeef") == "payload"
        assert list(again.keys()) == ["deadbeef"]
        assert again.total_bytes == len("payload")

    def test_missing_key(self, tmp_path):
        assert DiskCache(str(tmp_path)).get("nope") is None

    def test_empty_file_treated_as_corrupt(self, tmp_path):
        store = DiskCache(str(tmp_path))
        (tmp_path / "abc.json").write_text("")
        assert store.get("abc") is None
        assert store.stats.counters["corrupt_entries"] == 1
        assert not (tmp_path / "abc.json").exists()

    def test_no_temp_files_left_behind(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k1", "v1")
        store.put("k1", "v2")  # overwrite goes through a fresh temp file
        leftovers = [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")]
        assert leftovers == []
        assert store.get("k1") == "v2"

    def test_clear_returns_count(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("a", "1")
        store.put("b", "2")
        assert store.clear() == 2
        assert len(store) == 0

    def test_nested_directory_created(self, tmp_path):
        nested = tmp_path / "deep" / "cache"
        store = DiskCache(str(nested))
        store.put("k", "v")
        assert store.get("k") == "v"


class TestTieredCache:
    def test_disk_hit_promoted_to_memory(self, tmp_path):
        stats = ServiceStats()
        disk = DiskCache(str(tmp_path), stats=stats)
        disk.put("k", "v")
        tier = TieredCache(MemoryCache(stats=stats), disk)
        assert tier.get("k") == "v"
        assert stats.counters["disk_hits"] == 1
        # second read is a memory hit
        assert tier.get("k") == "v"
        assert stats.counters["memory_hits"] == 1
        assert stats.counters["disk_hits"] == 1

    def test_put_reaches_both_tiers(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        tier = TieredCache(MemoryCache(), disk)
        tier.put("k", "v")
        assert disk.get("k") == "v"

    def test_memory_only(self):
        tier = TieredCache(MemoryCache())
        tier.put("k", "v")
        assert tier.get("k") == "v"
        tier.clear()
        assert tier.get("k") is None

    def test_invalidate_drops_both_tiers(self, tmp_path):
        tier = TieredCache(MemoryCache(), DiskCache(str(tmp_path)))
        tier.put("k", "v")
        tier.invalidate("k")
        assert tier.get("k") is None
        assert TieredCache(MemoryCache(), DiskCache(str(tmp_path))).get("k") is None


class TestStats:
    def test_rates_and_merge(self):
        a = ServiceStats()
        a.count("hits", 3)
        a.count("misses", 1)
        a.count("requests", 8)
        a.count("dedup_folds", 4)
        assert a.hit_rate == pytest.approx(0.75)
        assert a.dedup_rate == pytest.approx(0.5)
        b = ServiceStats()
        b.count("hits", 1)
        b.add_time("compile", 0.5)
        b.set_value("memory_bytes", 10.0)
        a.merge(b)
        assert a.counters["hits"] == 4
        assert a.timers["compile"] == pytest.approx(0.5)
        assert "hits=4" in a.summary()
        a.reset()
        assert a.hit_rate == 0.0 and a.summary() == ""

    def test_timed_context(self):
        stats = ServiceStats()
        with stats.timed("lookup"):
            pass
        assert stats.timers["lookup"] >= 0.0
