"""Cache tiers: LRU caps, disk persistence, corruption recovery,
backend-digest sharding, TTL expiry, and explicit invalidation."""

import os

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    DEFAULT_SHARD,
    DiskCache,
    MemoryCache,
    ServiceStats,
    TieredCache,
)


class TestMemoryCache:
    def test_get_put_roundtrip(self):
        cache = MemoryCache()
        assert cache.get("k") is None
        cache.put("k", "payload")
        assert cache.get("k") == "payload"

    def test_entry_cap_evicts_lru(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", "3")
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert cache.stats.counters["evictions"] == 1

    def test_byte_cap_evicts(self):
        cache = MemoryCache(max_entries=100, max_bytes=10)
        cache.put("a", "xxxx")
        cache.put("b", "yyyy")
        cache.put("c", "zzzz")  # 12 bytes total -> a evicted
        assert cache.get("a") is None
        assert len(cache) == 2
        assert cache.total_bytes == 8

    def test_oversized_entry_not_cached(self):
        cache = MemoryCache(max_bytes=4)
        cache.put("big", "x" * 100)
        assert cache.get("big") is None
        assert len(cache) == 0

    def test_replacing_updates_bytes(self):
        cache = MemoryCache()
        cache.put("k", "aaaa")
        cache.put("k", "bb")
        assert cache.total_bytes == 2
        assert len(cache) == 1

    def test_invalid_caps_rejected(self):
        with pytest.raises(ServiceError):
            MemoryCache(max_entries=0)
        with pytest.raises(ServiceError):
            MemoryCache(max_bytes=0)

    def test_clear(self):
        cache = MemoryCache()
        cache.put("k", "v")
        cache.clear()
        assert cache.get("k") is None
        assert cache.total_bytes == 0

    def test_invalidate(self):
        cache = MemoryCache()
        cache.put("k", "v")
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.get("k") is None
        assert cache.total_bytes == 0

    def test_ttl_expires_entries(self, monkeypatch):
        import time as time_module

        now = [1000.0]
        monkeypatch.setattr(time_module, "monotonic", lambda: now[0])
        cache = MemoryCache(ttl=10.0)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        now[0] += 11.0
        assert cache.get("k") is None
        assert cache.stats.counters["expired_entries"] == 1
        assert len(cache) == 0

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ServiceError):
            MemoryCache(ttl=0)
        with pytest.raises(ServiceError):
            DiskCache("/tmp/whatever-unused", ttl=-1)


class TestDiskCache:
    def test_roundtrip_across_instances(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("deadbeef", "payload")
        again = DiskCache(str(tmp_path))
        assert again.get("deadbeef") == "payload"
        assert list(again.keys()) == ["deadbeef"]
        assert again.total_bytes == len("payload")

    def test_missing_key(self, tmp_path):
        assert DiskCache(str(tmp_path)).get("nope") is None

    def test_empty_file_treated_as_corrupt(self, tmp_path):
        store = DiskCache(str(tmp_path))
        (tmp_path / "abc.json").write_text("")
        assert store.get("abc") is None
        assert store.stats.counters["corrupt_entries"] == 1
        assert not (tmp_path / "abc.json").exists()

    def test_no_temp_files_left_behind(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k1", "v1")
        store.put("k1", "v2")  # overwrite goes through a fresh temp file
        leftovers = [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")]
        assert leftovers == []
        assert store.get("k1") == "v2"

    def test_clear_returns_count(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("a", "1")
        store.put("b", "2")
        assert store.clear() == 2
        assert len(store) == 0

    def test_nested_directory_created(self, tmp_path):
        nested = tmp_path / "deep" / "cache"
        store = DiskCache(str(nested))
        store.put("k", "v")
        assert store.get("k") == "v"


class TestDiskShards:
    def test_default_shard_layout(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("abc", "v")
        assert (tmp_path / DEFAULT_SHARD / "abc.json").is_file()
        assert store.shards() == [DEFAULT_SHARD]

    def test_shards_are_isolated_directories(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k", "for-device-a", shard="aaaa1111")
        store.put("k", "for-device-b", shard="bbbb2222")
        assert store.get("k", shard="aaaa1111") == "for-device-a"
        assert store.get("k", shard="bbbb2222") == "for-device-b"
        assert store.shards() == ["aaaa1111", "bbbb2222"]
        # one fingerprint, two snapshots: keys() deduplicates
        assert list(store.keys()) == ["k"]
        assert len(store) == 1

    def test_legacy_flat_entry_migrates_on_lookup(self, tmp_path):
        (tmp_path / "old.json").write_text("legacy-payload")
        store = DiskCache(str(tmp_path))
        assert store.get("old", shard="aaaa1111") == "legacy-payload"
        assert store.stats.counters["migrated_entries"] == 1
        assert not (tmp_path / "old.json").exists()
        assert (tmp_path / "aaaa1111" / "old.json").is_file()
        # second lookup hits the shard directly, no second migration
        assert store.get("old", shard="aaaa1111") == "legacy-payload"
        assert store.stats.counters["migrated_entries"] == 1

    def test_invalidate_without_shard_sweeps_everywhere(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k", "a", shard="aaaa1111")
        store.put("k", "b", shard="bbbb2222")
        (tmp_path / "k.json").write_text("legacy")
        assert store.invalidate("k") == 3
        assert store.stats.counters["invalidated_entries"] == 3
        assert store.get("k", shard="aaaa1111") is None
        assert store.invalidate("k") == 0

    def test_invalidate_with_shard_spares_others(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k", "a", shard="aaaa1111")
        store.put("k", "b", shard="bbbb2222")
        assert store.invalidate("k", shard="aaaa1111") == 1
        assert store.get("k", shard="bbbb2222") == "b"

    def test_shard_stats_and_gauges(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k1", "xxxx", shard="aaaa1111")
        store.put("k2", "yy", shard="aaaa1111")
        store.put("k3", "zzz", shard="bbbb2222")
        (tmp_path / "flat.json").write_text("w")
        usage = store.shard_stats()
        assert usage["aaaa1111"] == {"entries": 2, "bytes": 6}
        assert usage["bbbb2222"] == {"entries": 1, "bytes": 3}
        assert usage["legacy"] == {"entries": 1, "bytes": 1}
        store.refresh_shard_gauges()
        assert store.stats.values["shard_entries:aaaa1111"] == 2
        assert store.stats.values["shard_bytes:bbbb2222"] == 3
        # a cleared shard's gauges disappear on the next refresh
        store.clear()
        store.put("k9", "v", shard="cccc3333")
        store.refresh_shard_gauges()
        assert "shard_entries:aaaa1111" not in store.stats.values
        assert store.stats.values["shard_entries:cccc3333"] == 1

    def test_total_bytes_spans_shards(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put("k1", "xxxx", shard="aaaa1111")
        store.put("k2", "yy")
        assert store.total_bytes == 6
        assert store.clear() == 2
        assert store.total_bytes == 0

    def test_disk_ttl_expires_entries(self, tmp_path):
        store = DiskCache(str(tmp_path), ttl=60.0)
        store.put("k", "v")
        path = tmp_path / DEFAULT_SHARD / "k.json"
        old = path.stat().st_mtime - 120
        os.utime(path, (old, old))
        assert store.get("k") is None
        assert store.stats.counters["expired_entries"] == 1
        assert not path.exists()


class TestTtlByBands:
    @staticmethod
    def _age(tmp_path, shard, key, seconds):
        path = tmp_path / shard / f"{key}.json"
        old = path.stat().st_mtime - seconds
        os.utime(path, (old, old))
        return path

    def test_effective_ttl_resolution(self, tmp_path):
        store = DiskCache(
            str(tmp_path), ttl=3600.0, ttl_by_bands={1: 60.0, 4: 600.0}
        )
        assert store.effective_ttl(1) == 60.0
        assert store.effective_ttl(4) == 600.0
        # unmapped bands and band-less lookups use the base TTL
        assert store.effective_ttl(2) == 3600.0
        assert store.effective_ttl(None) == 3600.0
        assert store.effective_ttl(0) == 3600.0

    def test_expiry_ordering_wider_bands_age_faster(self, tmp_path):
        """The same age is expired for a wide-band lookup, still warm for
        a fine-band one, and immortal for exact digests — the ordering
        the drift policy promises."""
        store = DiskCache(
            str(tmp_path), ttl=None, ttl_by_bands={1: 60.0, 4: 600.0}
        )
        for key, shard in (("a", "s1"), ("b", "s2"), ("c", "s3")):
            store.put(key, "v", shard=shard)
            self._age(tmp_path, shard, key, 300)
        # 300s old: past the wide-band (1 band/decade) TTL of 60s
        assert store.get("a", shard="s1", bands=1) is None
        # same age survives under the finer 4-bands/decade TTL of 600s
        assert store.get("b", shard="s2", bands=4) == "v"
        # exact digests (banding off) have no TTL at all here
        assert store.get("c", shard="s3", bands=0) == "v"
        assert store.stats.counters["expired_entries"] == 1

    def test_band_ttl_overrides_base_in_both_directions(self, tmp_path):
        store = DiskCache(
            str(tmp_path), ttl=60.0, ttl_by_bands={2: 3600.0}
        )
        store.put("k", "v")
        self._age(tmp_path, DEFAULT_SHARD, "k", 300)
        # banded lookup outlives the base TTL...
        assert store.get("k", bands=2) == "v"
        # ...while the band-less lookup ages out under it
        assert store.get("k") is None

    def test_tiered_lookup_threads_bands_to_disk(self, tmp_path):
        disk = DiskCache(str(tmp_path), ttl_by_bands={1: 60.0})
        tier = TieredCache(MemoryCache(max_entries=1), disk)
        disk.put("k", "v")
        self._age(tmp_path, DEFAULT_SHARD, "k", 300)
        assert tier.get("k", bands=1) is None
        assert disk.stats.counters["expired_entries"] == 1

    def test_invalid_ttl_by_bands_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            DiskCache(str(tmp_path), ttl_by_bands={1: 0.0})
        with pytest.raises(ServiceError):
            DiskCache(str(tmp_path), ttl_by_bands={-1: 60.0})


class TestTieredCache:
    def test_disk_hit_promoted_to_memory(self, tmp_path):
        stats = ServiceStats()
        disk = DiskCache(str(tmp_path), stats=stats)
        disk.put("k", "v")
        tier = TieredCache(MemoryCache(stats=stats), disk)
        assert tier.get("k") == "v"
        assert stats.counters["disk_hits"] == 1
        # second read is a memory hit
        assert tier.get("k") == "v"
        assert stats.counters["memory_hits"] == 1
        assert stats.counters["disk_hits"] == 1

    def test_put_reaches_both_tiers(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        tier = TieredCache(MemoryCache(), disk)
        tier.put("k", "v")
        assert disk.get("k") == "v"

    def test_memory_only(self):
        tier = TieredCache(MemoryCache())
        tier.put("k", "v")
        assert tier.get("k") == "v"
        tier.clear()
        assert tier.get("k") is None

    def test_invalidate_drops_both_tiers(self, tmp_path):
        tier = TieredCache(MemoryCache(), DiskCache(str(tmp_path)))
        tier.put("k", "v")
        tier.invalidate("k")
        assert tier.get("k") is None
        assert TieredCache(MemoryCache(), DiskCache(str(tmp_path))).get("k") is None


class TestStats:
    def test_rates_and_merge(self):
        a = ServiceStats()
        a.count("hits", 3)
        a.count("misses", 1)
        a.count("requests", 8)
        a.count("dedup_folds", 4)
        assert a.hit_rate == pytest.approx(0.75)
        assert a.dedup_rate == pytest.approx(0.5)
        b = ServiceStats()
        b.count("hits", 1)
        b.add_time("compile", 0.5)
        b.set_value("memory_bytes", 10.0)
        a.merge(b)
        assert a.counters["hits"] == 4
        assert a.timers["compile"] == pytest.approx(0.5)
        assert "hits=4" in a.summary()
        a.reset()
        assert a.hit_rate == 0.0 and a.summary() == ""

    def test_timed_context(self):
        stats = ServiceStats()
        with stats.timed("lookup"):
            pass
        assert stats.timers["lookup"] >= 0.0


class TestDiskEviction:
    """Per-shard LRU eviction behind the byte/entry caps."""

    def _backdate(self, cache, key, age, shard=None):
        path = cache._path(key, shard)
        stamp = os.path.getmtime(path) - age
        os.utime(path, (stamp, stamp))

    def test_entry_cap_evicts_oldest(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_entries_per_shard=2)
        cache.put("aa", "1")
        self._backdate(cache, "aa", 200)
        cache.put("bb", "2")
        self._backdate(cache, "bb", 100)
        cache.put("cc", "3")
        assert cache.get("aa") is None
        assert cache.get("bb") == "2"
        assert cache.get("cc") == "3"
        assert cache.stats.counters["disk_evictions"] == 1

    def test_byte_cap_evicts_until_under(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes_per_shard=250)
        cache.put("aa", "x" * 100)
        self._backdate(cache, "aa", 200)
        cache.put("bb", "y" * 100)
        self._backdate(cache, "bb", 100)
        cache.put("cc", "z" * 100)  # 300 bytes in the shard -> drop "aa"
        assert cache.get("aa") is None
        assert cache.get("bb") == "y" * 100
        assert cache.get("cc") == "z" * 100
        assert cache.stats.counters["disk_evictions"] == 1

    def test_get_refreshes_recency_without_ttl(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_entries_per_shard=2)
        cache.put("aa", "1")
        self._backdate(cache, "aa", 200)
        cache.put("bb", "2")
        self._backdate(cache, "bb", 100)
        assert cache.get("aa") == "1"  # touches mtime: "aa" is hot again
        cache.put("cc", "3")
        assert cache.get("bb") is None, "the cold entry is the one evicted"
        assert cache.get("aa") == "1"
        assert cache.get("cc") == "3"

    def test_ttl_mode_evicts_oldest_written(self, tmp_path):
        # with a TTL, mtime doubles as the entry's age: a hit must NOT
        # refresh it, so eviction stays oldest-written first
        cache = DiskCache(str(tmp_path), ttl=3600.0, max_entries_per_shard=2)
        cache.put("aa", "1")
        self._backdate(cache, "aa", 200)
        cache.put("bb", "2")
        self._backdate(cache, "bb", 100)
        assert cache.get("aa") == "1"  # a hit, but recency must not move
        cache.put("cc", "3")
        assert cache.get("aa") is None
        assert cache.get("bb") == "2"

    def test_fresh_write_survives_even_over_cap(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes_per_shard=150)
        cache.put("aa", "x" * 100)
        self._backdate(cache, "aa", 100)
        cache.put("bb", "y" * 200)  # over the cap all by itself
        assert cache.get("aa") is None
        assert cache.get("bb") == "y" * 200, "the fresh entry is never evicted"

    def test_shards_trim_independently(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_entries_per_shard=1)
        cache.put("aa", "1", shard="s1")
        cache.put("bb", "2", shard="s2")
        assert cache.get("aa", shard="s1") == "1"
        assert cache.get("bb", shard="s2") == "2"
        self._backdate(cache, "aa", 100, shard="s1")
        cache.put("cc", "3", shard="s1")
        assert cache.get("aa", shard="s1") is None
        assert cache.get("bb", shard="s2") == "2"
        assert cache.get("cc", shard="s1") == "3"

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        for i in range(5):
            cache.put(f"k{i}", "x" * 100)
        assert all(cache.get(f"k{i}") for i in range(5))
        assert "disk_evictions" not in cache.stats.counters

    def test_invalid_caps_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            DiskCache(str(tmp_path), max_entries_per_shard=0)
        with pytest.raises(ServiceError):
            DiskCache(str(tmp_path), max_bytes_per_shard=0)
