"""Documentation integrity: links resolve, docs are reachable, CLI
snippets match the real argparse tree.

This is the test behind the CI ``docs`` job:

* every intra-repo markdown link in README and the doc set points at a
  file that exists;
* every file in ``docs/`` is referenced from README (nothing orphaned);
* every ``python -m repro ...`` command shown in README, the docs, and
  the ``repro.__main__`` docstring parses against ``build_parser()`` —
  usage examples cannot drift from the actual CLI again.
"""

import os
import re
import shlex

import pytest

import repro.__main__ as cli_module
from repro.__main__ import build_parser

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

DOC_FILES = sorted(
    [
        os.path.join(REPO_ROOT, name)
        for name in os.listdir(REPO_ROOT)
        if name.endswith(".md")
    ]
    + [
        os.path.join(DOCS_DIR, name)
        for name in os.listdir(DOCS_DIR)
        if name.endswith(".md")
    ]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relpath(path):
    return os.path.relpath(path, REPO_ROOT)


def _markdown_links(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return _LINK.findall(text)


def _fenced_blocks(text):
    """Return the concatenated contents of all shell code blocks."""
    blocks = re.findall(r"```(?:bash|sh|console)\n(.*?)```", text, flags=re.DOTALL)
    return "\n".join(blocks)


def _iter_repro_commands(text):
    """Yield every ``python -m repro ...`` invocation in *text* as argv
    (continuation lines joined, env-var prefixes and comments stripped)."""
    logical_lines = []
    pending = ""
    for raw in text.split("\n"):
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        logical_lines.append(line)
    for line in logical_lines:
        marker = "python -m repro"
        index = line.find(marker)
        if index < 0:
            continue
        prefix = line[:index].strip()
        # allow env-assignment prefixes (VAR=value python -m repro ...)
        if prefix and not all(
            re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*=\S*", token)
            for token in prefix.split()
        ):
            continue
        tail = line[index + len(marker):]
        yield shlex.split(tail, comments=True)


class TestLinksResolve:
    @pytest.mark.parametrize("path", DOC_FILES, ids=_relpath)
    def test_intra_repo_links_exist(self, path):
        broken = []
        for target in _markdown_links(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), relative)
            )
            if not os.path.exists(resolved):
                broken.append(target)
        assert not broken, (
            f"{_relpath(path)} has broken intra-repo links: {broken}"
        )


class TestDocsReachable:
    def test_every_doc_is_referenced_from_readme(self):
        readme = os.path.join(REPO_ROOT, "README.md")
        links = {
            os.path.normpath(os.path.join(REPO_ROOT, t.split("#", 1)[0]))
            for t in _markdown_links(readme)
            if not t.startswith(("http://", "https://", "mailto:", "#"))
        }
        orphans = [
            name
            for name in sorted(os.listdir(DOCS_DIR))
            if name.endswith(".md")
            and os.path.join(DOCS_DIR, name) not in links
        ]
        assert not orphans, (
            f"docs not referenced from README.md: {orphans} — add a link "
            "so every document is reachable from the front page"
        )

    def test_docs_cross_link_into_the_architecture_map(self):
        # every deep-dive must point back at the map (directly)
        for name in sorted(os.listdir(DOCS_DIR)):
            if not name.endswith(".md") or name == "ARCHITECTURE.md":
                continue
            links = _markdown_links(os.path.join(DOCS_DIR, name))
            assert any("ARCHITECTURE.md" in target for target in links), (
                f"docs/{name} does not link docs/ARCHITECTURE.md"
            )


class TestCliSnippetsParse:
    def _assert_commands_parse(self, text, source):
        parser = build_parser()
        commands = list(_iter_repro_commands(text))
        assert commands, f"no 'python -m repro' snippets found in {source}"
        for argv in commands:
            if not argv:
                continue
            try:
                parser.parse_args(argv)
            except SystemExit:
                pytest.fail(
                    f"{source}: documented command does not parse: "
                    f"python -m repro {' '.join(argv)}"
                )

    def test_readme_cli_snippets(self):
        with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as f:
            self._assert_commands_parse(_fenced_blocks(f.read()), "README.md")

    def test_docs_cli_snippets(self):
        for name in sorted(os.listdir(DOCS_DIR)):
            if not name.endswith(".md"):
                continue
            path = os.path.join(DOCS_DIR, name)
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            commands = list(_iter_repro_commands(_fenced_blocks(text)))
            for argv in commands:
                try:
                    build_parser().parse_args(argv)
                except SystemExit:
                    pytest.fail(
                        f"docs/{name}: documented command does not parse: "
                        f"python -m repro {' '.join(argv)}"
                    )

    def test_module_docstring_usage(self):
        self._assert_commands_parse(
            cli_module.__doc__, "repro.__main__ docstring"
        )

    def test_every_subcommand_is_documented_in_readme(self):
        """The README's Command line section must mention every
        subcommand the parser actually defines."""
        with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as f:
            readme = f.read()
        parser = build_parser()
        subactions = [
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        ]
        assert subactions, "parser grew no subcommands?"
        for name in subactions[0].choices:
            assert f"python -m repro {name}" in readme, (
                f"README.md Command line section is missing the "
                f"{name!r} subcommand"
            )
