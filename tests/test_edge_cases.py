"""Edge-case coverage across subsystems: empty, single-qubit, idle-wire,
and degenerate inputs."""

import networkx as nx
import pytest

from repro.circuit import QuantumCircuit, parse_qasm, to_qasm
from repro.core import (
    QSCaQR,
    QSCaQRCommuting,
    SRCaQR,
    lifetime_schedule,
    valid_reuse_pairs,
)
from repro.dag import DAGCircuit, dag_depth
from repro.hardware import generic_backend, line
from repro.sim import run_counts
from repro.transpiler import optimize_circuit, schedule_asap, transpile


class TestEmptyCircuits:
    def test_empty_circuit_everything(self):
        circuit = QuantumCircuit(3)
        assert circuit.depth() == 0
        assert circuit.duration_dt() == 0
        assert circuit.num_used_qubits() == 0
        assert dag_depth(DAGCircuit.from_circuit(circuit)) == 0
        assert schedule_asap(circuit).makespan == 0

    def test_empty_circuit_transpiles(self):
        backend = generic_backend(line(3), seed=1)
        result = transpile(QuantumCircuit(2), backend)
        assert result.swap_count == 0
        assert result.depth == 0

    def test_empty_circuit_qasm_roundtrip(self):
        circuit = QuantumCircuit(2, 1)
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.num_qubits == 2
        assert len(parsed) == 0

    def test_empty_circuit_has_no_reuse_pairs(self):
        assert valid_reuse_pairs(QuantumCircuit(4)) == []

    def test_optimize_empty(self):
        assert len(optimize_circuit(QuantumCircuit(2))) == 0


class TestSingleQubit:
    def test_single_qubit_pipeline(self):
        backend = generic_backend(line(2), seed=2)
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        result = transpile(circuit, backend)
        counts = run_counts(result.circuit.compacted(), shots=1000, seed=3)
        assert abs(counts.get("0", 0) - 500) < 100

    def test_single_qubit_sr(self):
        backend = generic_backend(line(2), seed=2)
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        result = SRCaQR(backend).run(circuit)
        assert result.swap_count == 0
        assert result.qubits_used == 1


class TestIdleWires:
    def test_idle_wires_not_reuse_candidates(self):
        circuit = QuantumCircuit(5, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        pairs = valid_reuse_pairs(circuit)
        touched = {0, 1}
        for pair in pairs:
            assert pair.source in touched and pair.target in touched

    def test_qs_sweep_with_idle_wires(self):
        circuit = QuantumCircuit(4, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        points = QSCaQR().sweep(circuit)
        # nothing to merge: single point
        assert len(points) == 1

    def test_compacted_empty_circuit(self):
        compact = QuantumCircuit(5).compacted()
        assert compact.num_qubits == 0


class TestDegenerateGraphs:
    def test_edgeless_graph_commuting(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        compiler = QSCaQRCommuting(graph)
        point = compiler.reduce_to(1)
        assert point.feasible
        assert point.qubits == 1

    def test_edgeless_lifetime(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        pairs, schedule = lifetime_schedule(graph, 1)
        assert len(pairs) == 3
        assert schedule.layers == []

    def test_single_edge_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(2))
        graph.add_edge(0, 1)
        point = QSCaQRCommuting(graph).reduce_to(2)
        assert point.feasible
        counts = run_counts(point.circuit, shots=100, seed=4)
        assert sum(counts.values()) == 100

    def test_self_contained_two_node_qaoa(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)  # vertex 2 isolated
        sweep = QSCaQRCommuting(graph).sweep()
        assert sweep[-1].qubits <= 2


class TestConditionalEdgeCases:
    def test_conditional_on_never_written_bit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).c_if(0, 1)  # c0 is always 0: gate never fires
        circuit.measure(0, 0)
        counts = run_counts(circuit, shots=50, seed=5)
        assert counts == {"0": 50}

    def test_conditional_value_zero(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).c_if(0, 0)  # fires because c0 == 0
        circuit.measure(0, 0)
        counts = run_counts(circuit, shots=50, seed=6)
        assert counts == {"1": 50}

    def test_double_reuse_same_wire_simulates(self):
        circuit = QuantumCircuit(1, 3)
        circuit.x(0)
        circuit.measure_and_reset(0, 0)
        circuit.x(0)
        circuit.measure_and_reset(0, 1)
        circuit.measure(0, 2)
        counts = run_counts(circuit, shots=50, seed=7)
        assert counts == {"110": 50}
