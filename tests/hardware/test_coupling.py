"""Tests for CouplingMap."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import CouplingMap


class TestConstruction:
    def test_basic(self):
        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        assert coupling.num_qubits == 3
        assert coupling.edges == [(0, 1), (1, 2)]

    def test_self_edge_rejected(self):
        with pytest.raises(HardwareError):
            CouplingMap(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(HardwareError):
            CouplingMap(2, [(0, 5)])

    def test_zero_qubits_rejected(self):
        with pytest.raises(HardwareError):
            CouplingMap(0, [])

    def test_duplicate_edges_collapse(self):
        coupling = CouplingMap(2, [(0, 1), (1, 0)])
        assert coupling.edges == [(0, 1)]


class TestQueries:
    def test_neighbors_and_degree(self):
        coupling = CouplingMap(4, [(0, 1), (1, 2), (1, 3)])
        assert coupling.neighbors(1) == {0, 2, 3}
        assert coupling.degree(1) == 3
        assert coupling.max_degree() == 3

    def test_adjacency(self):
        coupling = CouplingMap(3, [(0, 1)])
        assert coupling.are_adjacent(0, 1)
        assert not coupling.are_adjacent(0, 2)

    def test_connectivity(self):
        connected = CouplingMap(3, [(0, 1), (1, 2)])
        disconnected = CouplingMap(3, [(0, 1)])
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_distance(self):
        coupling = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert coupling.distance(0, 3) == 3
        assert coupling.distance(1, 1) == 0

    def test_distance_unreachable_raises(self):
        coupling = CouplingMap(3, [(0, 1)])
        with pytest.raises(HardwareError):
            coupling.distance(0, 2)

    def test_shortest_path_endpoints(self):
        coupling = CouplingMap(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        path = coupling.shortest_path(1, 4)
        assert path[0] == 1 and path[-1] == 4
        assert len(path) == 3  # 1-0-4
        for a, b in zip(path, path[1:]):
            assert coupling.are_adjacent(a, b)

    def test_star_feasibility_helper(self):
        coupling = CouplingMap(4, [(0, 1), (1, 2), (1, 3)])
        assert coupling.subgraph_has_embedding_for_star(3)
        assert not coupling.subgraph_has_embedding_for_star(4)

    def test_networkx_export(self):
        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        graph = coupling.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2


class TestDistanceMatrix:
    def test_matches_pairwise_distance(self):
        coupling = CouplingMap(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        matrix = coupling.distance_matrix()
        for a in range(5):
            for b in range(5):
                assert matrix[a, b] == coupling.distance(a, b)

    def test_unreachable_is_negative(self):
        coupling = CouplingMap(3, [(0, 1)])
        assert coupling.distance_matrix()[0, 2] == -1

    def test_read_only(self):
        import numpy as np

        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        matrix = coupling.distance_matrix()
        assert isinstance(matrix, np.ndarray)
        with pytest.raises(ValueError):
            matrix[0, 1] = 99
        # the shared cache is untouched by the failed write
        assert coupling.distance_matrix()[0, 1] == 1

    def test_cached_instance_shared(self):
        coupling = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert coupling.distance_matrix() is coupling.distance_matrix()

    def test_add_edge_invalidates(self):
        coupling = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        before = coupling.distance_matrix()
        assert before[0, 3] == 3
        coupling.add_edge(0, 3)
        after = coupling.distance_matrix()
        assert after is not before
        assert after[0, 3] == 1
