"""Tests for topology generators, focusing on heavy-hex properties."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    eagle_127,
    falcon_27,
    full,
    grid,
    heavy_hex,
    heavy_hex_rows,
    line,
    osprey_433,
    ring,
    scaled_heavy_hex,
    star,
)


class TestSimpleTopologies:
    def test_line(self):
        coupling = line(5)
        assert coupling.num_qubits == 5
        assert len(coupling.edges) == 4
        assert coupling.max_degree() == 2

    def test_ring(self):
        coupling = ring(6)
        assert len(coupling.edges) == 6
        assert all(coupling.degree(q) == 2 for q in range(6))

    def test_ring_too_small(self):
        with pytest.raises(HardwareError):
            ring(2)

    def test_grid(self):
        coupling = grid(3, 4)
        assert coupling.num_qubits == 12
        assert len(coupling.edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_star(self):
        coupling = star(5)
        assert coupling.degree(0) == 4
        assert all(coupling.degree(q) == 1 for q in range(1, 5))

    def test_full(self):
        coupling = full(5)
        assert len(coupling.edges) == 10
        assert coupling.max_degree() == 4


class TestHeavyHex:
    def test_degree_bounded_by_three(self):
        """The defining heavy-hex property the paper leans on (Fig. 4)."""
        for rows, cols in [(1, 1), (2, 2), (3, 3)]:
            coupling = heavy_hex(rows, cols)
            assert coupling.max_degree() <= 3

    def test_connected(self):
        assert heavy_hex(2, 3).is_connected()

    def test_has_degree_two_heavy_qubits(self):
        coupling = heavy_hex(2, 2)
        degrees = [coupling.degree(q) for q in range(coupling.num_qubits)]
        assert 2 in degrees and 3 in degrees

    def test_scaled_meets_minimum(self):
        for minimum in [16, 40, 128]:
            coupling = scaled_heavy_hex(minimum)
            assert coupling.num_qubits >= minimum
            assert coupling.max_degree() <= 3
            assert coupling.is_connected()

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(HardwareError):
            scaled_heavy_hex(0)


class TestHeavyHexRows:
    def test_degree_and_connectivity_invariants(self):
        """Chain qubits touch at most one rung (degree <= 3), rungs bridge
        exactly two chains (degree == 2), and the lattice is connected."""
        for rows, row_len in [(2, 5), (3, 9), (4, 13), (5, 7)]:
            coupling = heavy_hex_rows(rows, row_len)
            assert coupling.is_connected()
            assert coupling.max_degree() <= 3
            chain_qubits = rows * row_len
            for q in range(chain_qubits, coupling.num_qubits):
                assert coupling.degree(q) == 2  # every rung bridges one gap

    def test_single_row_degenerates_to_a_line(self):
        coupling = heavy_hex_rows(1, 5)
        assert coupling.num_qubits == 5
        assert sorted(coupling.edges) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_rung_offsets_alternate_per_gap(self):
        # 3x9: gap 0 rungs at columns 0/4/8, gap 1 (offset 2) at 2/6
        coupling = heavy_hex_rows(3, 9)
        assert coupling.num_qubits == 3 * 9 + 5
        assert len(coupling.edges) == 3 * 8 + 2 * 5

    def test_trim_drops_highest_rungs_and_keeps_ids_contiguous(self):
        full_lattice = heavy_hex_rows(3, 9)
        trimmed = heavy_hex_rows(3, 9, trim=1)
        assert trimmed.num_qubits == full_lattice.num_qubits - 1
        assert len(trimmed.edges) == len(full_lattice.edges) - 2
        assert trimmed.is_connected()
        assert max(q for edge in trimmed.edges for q in edge) == (
            trimmed.num_qubits - 1
        )

    def test_trim_bounds_rejected(self):
        with pytest.raises(HardwareError):
            heavy_hex_rows(3, 9, trim=6)  # only 5 rungs exist
        with pytest.raises(HardwareError):
            heavy_hex_rows(3, 9, trim=-1)

    def test_shape_bounds_rejected(self):
        with pytest.raises(HardwareError):
            heavy_hex_rows(0, 9)
        with pytest.raises(HardwareError):
            heavy_hex_rows(3, 2)

    def test_eagle_127_pins_published_counts(self):
        coupling = eagle_127()
        assert coupling.num_qubits == 127
        assert len(coupling.edges) == 142
        assert coupling.max_degree() == 3
        assert coupling.is_connected()

    def test_osprey_433_pins_published_counts(self):
        coupling = osprey_433()
        assert coupling.num_qubits == 433
        assert len(coupling.edges) == 502
        assert coupling.max_degree() == 3
        assert coupling.is_connected()


class TestFalcon27:
    def test_shape(self):
        coupling = falcon_27()
        assert coupling.num_qubits == 27
        assert len(coupling.edges) == 28
        assert coupling.is_connected()

    def test_heavy_hex_degree_property(self):
        assert falcon_27().max_degree() == 3
