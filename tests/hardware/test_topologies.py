"""Tests for topology generators, focusing on heavy-hex properties."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    falcon_27,
    full,
    grid,
    heavy_hex,
    line,
    ring,
    scaled_heavy_hex,
    star,
)


class TestSimpleTopologies:
    def test_line(self):
        coupling = line(5)
        assert coupling.num_qubits == 5
        assert len(coupling.edges) == 4
        assert coupling.max_degree() == 2

    def test_ring(self):
        coupling = ring(6)
        assert len(coupling.edges) == 6
        assert all(coupling.degree(q) == 2 for q in range(6))

    def test_ring_too_small(self):
        with pytest.raises(HardwareError):
            ring(2)

    def test_grid(self):
        coupling = grid(3, 4)
        assert coupling.num_qubits == 12
        assert len(coupling.edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_star(self):
        coupling = star(5)
        assert coupling.degree(0) == 4
        assert all(coupling.degree(q) == 1 for q in range(1, 5))

    def test_full(self):
        coupling = full(5)
        assert len(coupling.edges) == 10
        assert coupling.max_degree() == 4


class TestHeavyHex:
    def test_degree_bounded_by_three(self):
        """The defining heavy-hex property the paper leans on (Fig. 4)."""
        for rows, cols in [(1, 1), (2, 2), (3, 3)]:
            coupling = heavy_hex(rows, cols)
            assert coupling.max_degree() <= 3

    def test_connected(self):
        assert heavy_hex(2, 3).is_connected()

    def test_has_degree_two_heavy_qubits(self):
        coupling = heavy_hex(2, 2)
        degrees = [coupling.degree(q) for q in range(coupling.num_qubits)]
        assert 2 in degrees and 3 in degrees

    def test_scaled_meets_minimum(self):
        for minimum in [16, 40, 128]:
            coupling = scaled_heavy_hex(minimum)
            assert coupling.num_qubits >= minimum
            assert coupling.max_degree() <= 3
            assert coupling.is_connected()

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(HardwareError):
            scaled_heavy_hex(0)


class TestFalcon27:
    def test_shape(self):
        coupling = falcon_27()
        assert coupling.num_qubits == 27
        assert len(coupling.edges) == 28
        assert coupling.is_connected()

    def test_heavy_hex_degree_property(self):
        assert falcon_27().max_degree() == 3
