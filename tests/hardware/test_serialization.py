"""Tests for calibration / backend JSON serialization."""

import json

import pytest

from repro.exceptions import HardwareError
from repro.hardware import ibm_mumbai, generic_backend, line
from repro.hardware.serialization import (
    backend_from_json,
    backend_to_json,
    calibration_from_dict,
    calibration_to_dict,
)


class TestCalibrationRoundtrip:
    def test_roundtrip_exact(self):
        backend = generic_backend(line(5), seed=9)
        payload = calibration_to_dict(backend.calibration)
        restored = calibration_from_dict(payload)
        assert restored.cx_error == backend.calibration.cx_error
        assert restored.cx_duration == backend.calibration.cx_duration
        assert restored.readout_error == backend.calibration.readout_error
        assert restored.t1_dt == backend.calibration.t1_dt

    def test_payload_is_json_compatible(self):
        backend = generic_backend(line(3), seed=9)
        text = json.dumps(calibration_to_dict(backend.calibration))
        assert isinstance(text, str)

    def test_malformed_rejected(self):
        with pytest.raises(HardwareError):
            calibration_from_dict({"cx_error": {}})


class TestBackendRoundtrip:
    def test_mumbai_roundtrip(self):
        original = ibm_mumbai()
        restored = backend_from_json(backend_to_json(original))
        assert restored.name == original.name
        assert restored.num_qubits == original.num_qubits
        assert restored.coupling.edges == original.coupling.edges
        assert restored.calibration.cx_error == original.calibration.cx_error
        assert restored.supports_dynamic_circuits

    def test_restored_backend_compiles(self):
        from repro.core import SRCaQR
        from repro.workloads import bv_circuit

        restored = backend_from_json(backend_to_json(ibm_mumbai()))
        result = SRCaQR(restored).run(bv_circuit(5))
        assert result.circuit.num_qubits == 27

    def test_invalid_json_rejected(self):
        with pytest.raises(HardwareError):
            backend_from_json("not json {")

    def test_wrong_version_rejected(self):
        payload = json.loads(backend_to_json(ibm_mumbai()))
        payload["version"] = 99
        with pytest.raises(HardwareError):
            backend_from_json(json.dumps(payload))

    def test_missing_field_rejected(self):
        payload = json.loads(backend_to_json(ibm_mumbai()))
        del payload["edges"]
        with pytest.raises(HardwareError):
            backend_from_json(json.dumps(payload))
