"""Tests for calibration models and the synthetic generator."""

import pytest

from repro.circuit.gates import DEFAULT_DURATIONS
from repro.exceptions import HardwareError
from repro.hardware import (
    Backend,
    Calibration,
    CouplingMap,
    generic_backend,
    ibm_mumbai,
    line,
    scaled_heavy_hex_backend,
    synthetic_calibration,
)


class TestSyntheticCalibration:
    def test_every_link_calibrated(self):
        coupling = line(5)
        calibration = synthetic_calibration(coupling, seed=7)
        for a, b in coupling.edges:
            assert 0 < calibration.get_cx_error(a, b) < 1
            assert calibration.get_cx_duration(a, b) > 0

    def test_every_qubit_calibrated(self):
        coupling = line(4)
        calibration = synthetic_calibration(coupling, seed=7)
        for q in range(4):
            assert 0 < calibration.get_readout_error(q) < 1
            assert calibration.get_t1(q) > 0
            assert calibration.get_t2(q) > 0

    def test_deterministic_with_seed(self):
        coupling = line(5)
        a = synthetic_calibration(coupling, seed=11)
        b = synthetic_calibration(coupling, seed=11)
        assert a.cx_error == b.cx_error
        assert a.readout_error == b.readout_error

    def test_different_seeds_differ(self):
        coupling = line(5)
        a = synthetic_calibration(coupling, seed=1)
        b = synthetic_calibration(coupling, seed=2)
        assert a.cx_error != b.cx_error

    def test_errors_within_requested_range(self):
        coupling = line(10)
        calibration = synthetic_calibration(
            coupling, seed=3, cx_error_range=(0.01, 0.02)
        )
        for value in calibration.cx_error.values():
            assert 0.01 <= value <= 0.02

    def test_missing_link_raises(self):
        calibration = synthetic_calibration(line(3), seed=1)
        with pytest.raises(HardwareError):
            calibration.get_cx_error(0, 2)

    def test_best_link(self):
        calibration = synthetic_calibration(line(6), seed=5)
        a, b = calibration.best_link()
        best = calibration.get_cx_error(a, b)
        assert all(best <= err for err in calibration.cx_error.values())

    def test_empty_best_link_raises(self):
        with pytest.raises(HardwareError):
            Calibration().best_link()


class TestInstructionDuration:
    def test_cx_uses_link_duration(self):
        coupling = line(3)
        calibration = synthetic_calibration(coupling, seed=9)
        assert calibration.instruction_duration("cx", (0, 1)) == \
            calibration.get_cx_duration(0, 1)

    def test_swap_is_three_cx(self):
        coupling = line(3)
        calibration = synthetic_calibration(coupling, seed=9)
        assert calibration.instruction_duration("swap", (0, 1)) == \
            3 * calibration.get_cx_duration(0, 1)

    def test_measure_and_reset_durations(self):
        calibration = synthetic_calibration(line(2), seed=9)
        assert calibration.instruction_duration("measure", (0,)) == \
            DEFAULT_DURATIONS["measure"]
        assert calibration.instruction_duration("reset", (0,)) == \
            DEFAULT_DURATIONS["reset"]

    def test_uncalibrated_link_falls_back_to_default(self):
        calibration = synthetic_calibration(line(3), seed=9)
        assert calibration.instruction_duration("cx", (0, 2)) == DEFAULT_DURATIONS["cx"]


class TestBackends:
    def test_generic_backend(self):
        backend = generic_backend(line(4), name="test")
        assert backend.num_qubits == 4
        assert backend.supports_dynamic_circuits

    def test_width_validation(self):
        backend = generic_backend(line(4))
        backend.validate_circuit_width(4)
        with pytest.raises(HardwareError):
            backend.validate_circuit_width(5)

    def test_backend_requires_full_calibration(self):
        coupling = line(3)
        partial = Calibration()
        with pytest.raises(HardwareError):
            Backend("bad", coupling, partial)

    def test_mumbai_properties(self):
        backend = ibm_mumbai()
        assert backend.num_qubits == 27
        assert backend.name == "ibm_mumbai"
        assert backend.supports_dynamic_circuits
        assert backend.coupling.max_degree() == 3

    def test_mumbai_reproducible(self):
        a, b = ibm_mumbai(), ibm_mumbai()
        assert a.calibration.cx_error == b.calibration.cx_error

    def test_scaled_backend(self):
        backend = scaled_heavy_hex_backend(64)
        assert backend.num_qubits >= 64
        assert backend.coupling.max_degree() <= 3
