"""Calibration-drift simulator: determinism, clamps, and what stays fixed."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    DriftSimulator,
    backend_to_json,
    drift_series,
    get_device,
    ibm_mumbai,
)


class TestDriftSeries:
    def test_deterministic_in_backend_volatility_seed(self):
        a = drift_series(ibm_mumbai(), 6, volatility=0.02, seed=3)
        b = drift_series(ibm_mumbai(), 6, volatility=0.02, seed=3)
        assert [backend_to_json(s) for s in a] == [backend_to_json(s) for s in b]

    def test_seed_changes_the_walk(self):
        a = drift_series(ibm_mumbai(), 4, seed=3)
        b = drift_series(ibm_mumbai(), 4, seed=4)
        assert backend_to_json(a[1]) != backend_to_json(b[1])

    def test_first_element_is_day_zero(self):
        backend = ibm_mumbai()
        series = drift_series(backend, 3)
        assert backend_to_json(series[0]) == backend_to_json(backend)

    def test_steps_actually_drift(self):
        series = drift_series(ibm_mumbai(), 3, volatility=0.05, seed=1)
        assert backend_to_json(series[0]) != backend_to_json(series[1])
        assert backend_to_json(series[1]) != backend_to_json(series[2])

    def test_source_backend_never_mutates(self):
        backend = ibm_mumbai()
        before = backend_to_json(backend)
        drift_series(backend, 5, volatility=0.1, seed=2)
        assert backend_to_json(backend) == before

    def test_durations_and_topology_stay_fixed(self):
        backend = get_device("grid36")
        for snapshot in drift_series(backend, 5, volatility=0.1, seed=9):
            assert snapshot.coupling.edges == backend.coupling.edges
            assert snapshot.calibration.cx_duration == (
                backend.calibration.cx_duration
            )
            assert snapshot.calibration.measure_duration == (
                backend.calibration.measure_duration
            )

    def test_zero_steps_rejected(self):
        with pytest.raises(HardwareError):
            drift_series(ibm_mumbai(), 0)


class TestDriftClamps:
    def test_max_drift_bounds_the_excursion(self):
        backend = ibm_mumbai()
        start = dict(backend.calibration.cx_error)
        simulator = DriftSimulator(backend, volatility=0.5, seed=5, max_drift=2.0)
        for _ in range(50):
            snapshot = simulator.step()
        for edge, value in snapshot.calibration.cx_error.items():
            assert start[edge] / 2.0 <= value <= start[edge] * 2.0

    def test_errors_stay_probabilities(self):
        # violent drift with a huge allowed excursion: the 0.5 cap holds
        simulator = DriftSimulator(
            ibm_mumbai(), volatility=1.0, seed=6, max_drift=1e6
        )
        for _ in range(20):
            snapshot = simulator.step()
        calibration = snapshot.calibration
        for mapping in (
            calibration.cx_error,
            calibration.readout_error,
            calibration.sq_error,
        ):
            assert all(0.0 < value <= 0.5 for value in mapping.values())

    def test_t2_never_exceeds_twice_t1(self):
        simulator = DriftSimulator(
            ibm_mumbai(), volatility=0.5, seed=8, max_drift=1e6
        )
        for _ in range(20):
            snapshot = simulator.step()
        calibration = snapshot.calibration
        for qubit, t2 in calibration.t2_dt.items():
            assert t2 <= 2.0 * calibration.t1_dt[qubit]

    def test_bad_arguments_raise(self):
        with pytest.raises(HardwareError):
            DriftSimulator(ibm_mumbai(), volatility=-0.1)
        with pytest.raises(HardwareError):
            DriftSimulator(ibm_mumbai(), max_drift=0.5)
