"""Device registry: large heavy-hex generators and named profiles."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    DeviceProfile,
    MUMBAI_SEED,
    backend_to_json,
    device_names,
    device_profile,
    eagle_127,
    get_device,
    heavy_hex_rows,
    ibm_mumbai,
    line,
    osprey_433,
    register_device,
)


class TestHeavyHexRows:
    def test_eagle_hits_published_count(self):
        coupling = eagle_127()
        assert coupling.num_qubits == 127
        assert coupling.is_connected()
        assert coupling.max_degree() == 3

    def test_osprey_hits_published_count(self):
        coupling = osprey_433()
        assert coupling.num_qubits == 433
        assert coupling.is_connected()
        assert coupling.max_degree() == 3

    def test_untrimmed_lattice_is_connected_heavy(self):
        coupling = heavy_hex_rows(4, 11)
        assert coupling.is_connected()
        assert coupling.max_degree() == 3
        # 4 chains of 11 + rungs: gaps alternate offsets 0 and 2
        assert coupling.num_qubits == 4 * 11 + (3 + 3 + 3)

    def test_trim_drops_highest_rungs_contiguously(self):
        trimmed = heavy_hex_rows(4, 11, trim=2)
        assert trimmed.num_qubits == heavy_hex_rows(4, 11).num_qubits - 2
        assert trimmed.is_connected()

    def test_bad_arguments_raise(self):
        with pytest.raises(HardwareError):
            heavy_hex_rows(0, 11)
        with pytest.raises(HardwareError):
            heavy_hex_rows(3, 2)
        with pytest.raises(HardwareError):
            heavy_hex_rows(3, 11, trim=999)


class TestDeviceRegistry:
    def test_catalogue_contains_the_zoo(self):
        names = device_names()
        for expected in (
            "ibm_mumbai",
            "eagle127",
            "osprey433",
            "grid36",
            "grid64",
            "iontrap32",
            "iontrap56",
        ):
            assert expected in names

    def test_backends_are_deterministic(self):
        assert backend_to_json(get_device("eagle127")) == backend_to_json(
            get_device("eagle127")
        )

    def test_mumbai_profile_matches_legacy_constructor(self):
        # the registry entry must be a drop-in for repro.hardware.ibm_mumbai
        # up to the snapshot name
        registry = get_device("ibm_mumbai")
        legacy = ibm_mumbai()
        assert device_profile("ibm_mumbai").seed == MUMBAI_SEED
        assert registry.coupling.edges == legacy.coupling.edges
        assert registry.calibration.cx_error == legacy.calibration.cx_error
        assert registry.calibration.t1_dt == legacy.calibration.t1_dt

    def test_ion_trap_profile_is_slow_but_coherent(self):
        ion = get_device("iontrap32")
        sc = get_device("ibm_mumbai")
        assert ion.coupling.max_degree() == 31  # all-to-all
        assert min(ion.calibration.cx_duration.values()) > max(
            sc.calibration.cx_duration.values()
        )
        assert min(ion.calibration.t1_dt.values()) > max(
            sc.calibration.t1_dt.values()
        )
        assert ion.calibration.measure_duration > sc.calibration.measure_duration

    def test_unknown_device_raises_with_catalogue(self):
        with pytest.raises(HardwareError, match="ibm_mumbai"):
            device_profile("no_such_device")

    def test_duplicate_registration_raises(self):
        profile = DeviceProfile(
            name="ibm_mumbai",
            family="heavy-hex",
            description="imposter",
            coupling_factory=lambda: line(3),
            seed=1,
        )
        with pytest.raises(HardwareError):
            register_device(profile)

    def test_replace_registration_is_explicit_and_scoped(self):
        original = device_profile("grid36")
        replacement = DeviceProfile(
            name="grid36",
            family="square-grid",
            description="temporary override",
            coupling_factory=lambda: line(4),
            seed=2,
        )
        try:
            register_device(replacement, replace=True)
            assert device_profile("grid36").description == "temporary override"
        finally:
            register_device(original, replace=True)
        assert device_profile("grid36") is original
