"""Regression tests for the incremental descendants-bitset updates.

The incremental engine never recomputes the full reachability closure
during a sweep — ``update_masks_for_edge`` / ``update_masks_for_node``
patch the cached bitsets in place, and :class:`repro.core.session.ReuseSession`
relies on those patches staying *bit-for-bit identical* to a from-scratch
:func:`repro.dag.reachability.descendants_bitsets` recomputation after
every ``apply``.  These tests pin that identity, including the
Condition-2 ordering and cycle-adjacent edge cases.
"""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.core.conditions import ReuseAnalysis
from repro.core.session import ReuseSession
from repro.dag.dagcircuit import DAGCircuit
from repro.dag.reachability import (
    descendants_bitsets,
    update_masks_for_edge,
    update_masks_for_node,
)
from repro.workloads.bv import bv_circuit


def _assert_masks_exact(dag, masks):
    fresh = descendants_bitsets(dag)
    assert masks.keys() == fresh.keys()
    for node_id, expected in fresh.items():
        assert masks[node_id] == expected, (
            f"node {node_id}: incremental mask {masks[node_id]:b} != "
            f"recomputed {expected:b}"
        )


class TestUpdateMasksForEdge:
    def test_chain_extension(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.x(1)
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        ops = dag.op_nodes(include_directives=True)
        dag.add_edge(ops[0], ops[1])
        changed = update_masks_for_edge(dag, masks, ops[0], ops[1])
        _assert_masks_exact(dag, masks)
        assert ops[0] in changed

    def test_redundant_edge_changes_nothing(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.x(0)
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        ops = dag.op_nodes(include_directives=True)
        # h already reaches x through the wire edge; a transitive
        # shortcut must be a no-op on every mask
        before = dict(masks)
        dag.add_edge(ops[0], ops[1])
        changed = update_masks_for_edge(dag, masks, ops[0], ops[1])
        assert masks == before
        assert changed == set()
        _assert_masks_exact(dag, masks)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_edge_insertions(self, seed):
        circuit = random_circuit(4, num_gates=12, seed=seed)
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        order = dag.topological_order()
        # splice several forward (acyclic-safe) edges and re-verify each time
        for offset in (1, 3, 5):
            for i in range(0, len(order) - offset, 4):
                source, target = order[i], order[i + offset]
                dag.add_edge(source, target)
                update_masks_for_edge(dag, masks, source, target)
                _assert_masks_exact(dag, masks)


class TestUpdateMasksForNode:
    def test_fresh_sink_node(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        dummy = dag.add_virtual_node(weight=1, tag="d")
        for node_id in dag.op_nodes(include_directives=True):
            if node_id != dummy:
                dag.add_edge(node_id, dummy)
        changed = update_masks_for_node(dag, masks, dummy)
        _assert_masks_exact(dag, masks)
        assert dummy in changed

    def test_mid_graph_splice(self):
        # the reuse shape: new node below all of qubit 0, above all of qubit 1
        circuit = bv_circuit(4)
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        dummy = dag.add_virtual_node(weight=1, tag="d")
        for node_id in dag.nodes_on_qubit(0):
            dag.add_edge(node_id, dummy)
        for node_id in dag.nodes_on_qubit(1):
            dag.add_edge(dummy, node_id)
        update_masks_for_node(dag, masks, dummy)
        _assert_masks_exact(dag, masks)


class TestSessionMaskConsistency:
    """The session's live masks stay exact across a full greedy sweep."""

    def _drain(self, circuit):
        session = ReuseSession(circuit)
        _assert_masks_exact(session.dag, session.masks)
        while True:
            pairs = session.valid_pairs()
            if not pairs:
                break
            session.apply(pairs[0])
            _assert_masks_exact(session.dag, session.masks)
            assert not session.dag.has_cycle()
        return session

    def test_bv_full_reduction(self):
        session = self._drain(bv_circuit(6))
        assert session.num_qubits == 2

    @pytest.mark.parametrize("seed", range(10))
    def test_random_circuits(self, seed):
        circuit = random_circuit(
            4 + seed % 3, num_gates=10 + seed, seed=seed, measure=seed % 2 == 0
        )
        self._drain(circuit)

    def test_condition2_ordering_case(self):
        # 0 -> 1 dependency chain: (1, 0) violates Condition 2, (0, 1) is
        # fine; after applying it the masks must show the merged ordering
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 2)
        circuit.cx(2, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        session = ReuseSession(circuit)
        pairs = {(p.source, p.target) for p in session.valid_pairs()}
        assert (0, 1) in pairs
        assert (1, 0) not in pairs
        session.apply(next(p for p in session.valid_pairs() if (p.source, p.target) == (0, 1)))
        _assert_masks_exact(session.dag, session.masks)
        # the session's pair view still matches a from-scratch analysis
        fresh = {
            (p.source, p.target)
            for p in ReuseAnalysis(session.circuit).valid_pairs()
        }
        live = {(p.source, p.target) for p in session.valid_pairs()}
        assert live == fresh

    def test_session_valid_pairs_match_analysis_each_step(self):
        circuit = bv_circuit(5)
        session = ReuseSession(circuit)
        while True:
            live = [(p.source, p.target) for p in session.valid_pairs()]
            fresh = [
                (p.source, p.target)
                for p in ReuseAnalysis(session.circuit).valid_pairs()
            ]
            assert live == fresh
            if not live:
                break
            session.apply(session.valid_pairs()[0])
