"""Tests for DAG timing analysis (ASAP/ALAP, critical path, slack)."""

from repro.circuit import QuantumCircuit
from repro.dag import (
    DAGCircuit,
    alap_finish_times,
    asap_finish_times,
    critical_path_length,
    critical_path_nodes,
    dag_depth,
    dag_duration,
    node_weight_duration,
    slack,
)


def diamond_circuit() -> QuantumCircuit:
    """q0 chain of 3 gates; q1 single gate joining late."""
    circuit = QuantumCircuit(2)
    circuit.h(0)       # n0
    circuit.x(0)       # n1
    circuit.h(1)       # n2 (off critical path)
    circuit.cx(0, 1)   # n3
    return circuit


class TestASAPALAP:
    def test_asap_levels(self):
        dag = DAGCircuit.from_circuit(diamond_circuit())
        asap = asap_finish_times(dag)
        assert asap[0] == 1
        assert asap[1] == 2
        assert asap[2] == 1
        assert asap[3] == 3

    def test_alap_levels(self):
        dag = DAGCircuit.from_circuit(diamond_circuit())
        alap = alap_finish_times(dag)
        assert alap[3] == 3
        assert alap[2] == 2  # h(1) can slide one level later

    def test_slack_identifies_critical_path(self):
        dag = DAGCircuit.from_circuit(diamond_circuit())
        s = slack(dag)
        assert s[0] == 0 and s[1] == 0 and s[3] == 0
        assert s[2] == 1

    def test_empty_dag(self):
        dag = DAGCircuit.from_circuit(QuantumCircuit(2))
        assert critical_path_length(dag) == 0
        assert critical_path_nodes(dag) == []


class TestCriticalPath:
    def test_depth_matches_circuit_depth(self):
        circuit = diamond_circuit()
        dag = DAGCircuit.from_circuit(circuit)
        assert dag_depth(dag) == circuit.depth() == 3

    def test_critical_path_nodes_form_a_path(self):
        dag = DAGCircuit.from_circuit(diamond_circuit())
        path = critical_path_nodes(dag)
        assert path == [0, 1, 3]
        for a, b in zip(path, path[1:]):
            assert b in dag.successors(a)

    def test_duration_weighting(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)        # 160 dt
        circuit.cx(0, 1)    # 1760 dt
        dag = DAGCircuit.from_circuit(circuit)
        assert dag_duration(dag) == 160 + 1760

    def test_virtual_node_weight_counts(self):
        dag = DAGCircuit.from_circuit(diamond_circuit())
        virtual = dag.add_virtual_node(weight=100, tag="reuse")
        dag.add_edge(1, virtual)
        dag.add_edge(virtual, 3)
        assert critical_path_length(dag, node_weight_duration) >= 100

    def test_directive_has_zero_weight(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        dag = DAGCircuit.from_circuit(circuit)
        assert dag_depth(dag) == 2
