"""Tests for transitive reachability and the qubit dependency matrix."""

from repro.circuit import QuantumCircuit
from repro.dag import (
    DAGCircuit,
    descendants_bitsets,
    qubit_dependency_matrix,
    reaches,
)


class TestDescendants:
    def test_chain(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.x(0)
        circuit.h(0)
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        assert reaches(masks, 0, 2)
        assert reaches(masks, 0, 1)
        assert not reaches(masks, 2, 0)

    def test_branching(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)  # n0
        circuit.h(1)      # n1
        circuit.h(2)      # n2 independent
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        assert reaches(masks, 0, 1)
        assert not reaches(masks, 0, 2)
        assert not reaches(masks, 2, 0)


class TestQubitDependencyMatrix:
    def test_paper_fig7_invalid_pair(self):
        """Fig. 7: reusing q1 for q4 is invalid because g(q3,q1) depends on
        g(q4,q2) transitively."""
        circuit = QuantumCircuit(4)
        # DAG of Fig. 7(a): g(q4,q2) -> g(q2,q3) -> g(q3,q1)
        circuit.cx(3, 1)  # g(q4, q2): using indices q4->3, q2->1
        circuit.cx(1, 2)  # g(q2, q3)
        circuit.cx(2, 0)  # g(q3, q1): q1 -> 0
        dag = DAGCircuit.from_circuit(circuit)
        matrix = qubit_dependency_matrix(dag)
        # gates on q4 (index 3) precede gates on q1 (index 0)
        assert matrix[(3, 0)]
        # so the reuse pair (q1 -> q4), i.e. (0 -> 3), violates Condition 2
        # (q_j = 3 has gates preceding gates of q_i = 0)
        assert matrix[(3, 0)] is True

    def test_independent_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        dag = DAGCircuit.from_circuit(circuit)
        matrix = qubit_dependency_matrix(dag)
        assert not matrix[(0, 2)]
        assert not matrix[(2, 0)]
        # shared-gate qubits depend on each other both ways
        assert matrix[(0, 1)] and matrix[(1, 0)]

    def test_bv_structure(self):
        """In BV every data qubit interacts only with the target."""
        n = 3
        circuit = QuantumCircuit(n + 1)
        for q in range(n):
            circuit.h(q)
            circuit.cx(q, n)
            circuit.h(q)
        dag = DAGCircuit.from_circuit(circuit)
        matrix = qubit_dependency_matrix(dag)
        # CX(0,n) precedes CX(1,n) via the shared target wire
        assert matrix[(0, 1)]
        # but no gate on q1 precedes any gate on q0
        assert not matrix[(1, 0)]

    def test_matrix_excludes_diagonal(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        dag = DAGCircuit.from_circuit(circuit)
        matrix = qubit_dependency_matrix(dag)
        assert (0, 0) not in matrix
