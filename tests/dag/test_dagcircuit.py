"""Unit tests for DAGCircuit construction and manipulation."""

import pytest

from repro.circuit import QuantumCircuit
from repro.dag import DAGCircuit
from repro.exceptions import DAGError


def simple_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, 1)
    circuit.h(0)          # n0
    circuit.cx(0, 1)      # n1
    circuit.cx(1, 2)      # n2
    circuit.measure(2, 0) # n3
    return circuit


class TestConstruction:
    def test_node_count(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        assert len(dag) == 4

    def test_wire_edges(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        order = dag.topological_order()
        assert order == [0, 1, 2, 3]
        assert 1 in dag.successors(0)
        assert 2 in dag.successors(1)
        assert 3 in dag.successors(2)

    def test_parallel_gates_have_no_edge(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        dag = DAGCircuit.from_circuit(circuit)
        assert not dag.successors(0)
        assert not dag.predecessors(1)

    def test_condition_creates_clbit_edge(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        dag = DAGCircuit.from_circuit(circuit)
        assert 1 in dag.successors(0)

    def test_front_layer(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.h(1)
        circuit.cx(0, 1)
        circuit.h(2)
        dag = DAGCircuit.from_circuit(circuit)
        assert set(dag.front_layer()) == {0, 1, 3}


class TestMutation:
    def test_add_virtual_node_and_edges(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        virtual = dag.add_virtual_node(weight=5, tag="reuse")
        dag.add_edge(0, virtual)
        dag.add_edge(virtual, 3)
        assert dag.nodes[virtual].is_virtual
        assert virtual in dag.successors(0)

    def test_self_loop_rejected(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        with pytest.raises(DAGError):
            dag.add_edge(1, 1)

    def test_unknown_node_rejected(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        with pytest.raises(DAGError):
            dag.add_edge(0, 99)

    def test_remove_node_cleans_edges(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        dag.remove_node(1)
        assert 1 not in dag.successors(0)
        assert 1 not in dag.predecessors(2)
        assert len(dag) == 3

    def test_cycle_detection(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        assert not dag.has_cycle()
        dag.add_edge(3, 0)
        assert dag.has_cycle()

    def test_copy_is_structural(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        duplicate = dag.copy()
        duplicate.add_edge(3, 0)
        assert not dag.has_cycle()
        assert duplicate.has_cycle()


class TestConversion:
    def test_roundtrip_preserves_semantics(self):
        circuit = simple_circuit()
        rebuilt = DAGCircuit.from_circuit(circuit).to_circuit()
        assert [i.name for i in rebuilt.data] == [i.name for i in circuit.data]
        assert rebuilt.num_qubits == circuit.num_qubits

    def test_roundtrip_keeps_wire_order_dependencies(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.cx(0, 1)
        circuit.x(1)
        rebuilt = DAGCircuit.from_circuit(circuit).to_circuit()
        names = [(i.name, i.qubits) for i in rebuilt.data]
        assert names.index(("x", (0,))) < names.index(("cx", (0, 1)))
        assert names.index(("cx", (0, 1))) < names.index(("x", (1,)))

    def test_virtual_nodes_dropped_in_circuit(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        dag.add_virtual_node(weight=3)
        rebuilt = dag.to_circuit()
        assert len(rebuilt) == 4

    def test_layers(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.h(1)
        circuit.cx(0, 1)
        circuit.h(2)
        dag = DAGCircuit.from_circuit(circuit)
        layer_list = list(dag.layers())
        assert set(layer_list[0]) == {0, 1, 3}
        assert layer_list[1] == [2]

    def test_nodes_on_qubit(self):
        dag = DAGCircuit.from_circuit(simple_circuit())
        assert dag.nodes_on_qubit(1) == [1, 2]
        assert dag.nodes_on_qubit(2) == [2, 3]
