"""Engine selection, regression pins, and cross-engine agreement.

The counts pinned here were captured from the pre-engine-knob simulator,
so ``engine="reference"`` (and ``engine="auto"`` on its domain) staying
byte-identical to the historical output is enforced forever.
"""

import hashlib
import json

import pytest

from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.exceptions import SimulationError
from repro.sim import NoiseModel, SimStats, run_counts
from repro.sim.statevector import ENGINES, _resolve_engine
from repro.workloads import bv_circuit


def ghz3():
    circuit = QuantumCircuit(3, 3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    for q in range(3):
        circuit.measure(q, q)
    return circuit


def wide12():
    circuit = QuantumCircuit(12, 12)
    for q in range(12):
        circuit.h(q)
        circuit.rz(0.3 * (q + 1), q)
    for q in range(11):
        circuit.cx(q, q + 1)
    for q in range(12):
        circuit.measure(q, q)
    return circuit


def branchy():
    circuit = QuantumCircuit(2, 3)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.x(1).c_if(0, 1)
    circuit.h(0)
    circuit.measure(0, 1)
    circuit.measure(1, 2)
    return circuit


def bv6_reuse():
    return QSCaQR().sweep(bv_circuit(6))[-1].circuit


def bell():
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    return circuit


NOISE = NoiseModel.uniform(
    one_qubit_error=0.01, two_qubit_error=0.05, readout=0.03
)

# (builder, shots, seed, noise) -> counts captured before the engine knob
PINS = [
    (ghz3, 3000, 8, None, {"000": 1533, "111": 1467}),
    (branchy, 600, 5, None, {"000": 140, "010": 141, "101": 157, "111": 162}),
    (bv6_reuse, 500, 7, None, {"11111": 500}),
    (bell, 512, 3, NOISE, {"00": 222, "01": 23, "10": 19, "11": 248}),
]
PIN_IDS = ["ghz3", "branchy", "bv6", "bell"]


@pytest.mark.parametrize("case", PINS, ids=PIN_IDS)
def test_regression_pins_reference(case):
    """engine="reference" reproduces the historical counts bit-for-bit."""
    builder, shots, seed, noise, expected = case
    counts = run_counts(
        builder(), shots=shots, seed=seed, noise=noise, engine="reference"
    )
    assert dict(counts) == expected


@pytest.mark.parametrize("case", PINS[:3], ids=PIN_IDS[:3])
def test_regression_pins_auto_noiseless(case):
    """On noiseless circuits auto routes to engines that are seeded
    bit-identical to the reference, so the pins hold there too.  (Noisy
    auto runs route to the batch engine, which is only required to match
    the reference in distribution.)"""
    builder, shots, seed, noise, expected = case
    counts = run_counts(builder(), shots=shots, seed=seed, noise=noise)
    assert dict(counts) == expected


def test_regression_pin_wide_terminal():
    """400-shot 12-qubit terminal sample, pinned by digest (390 keys)."""
    counts = run_counts(wide12(), shots=400, seed=21, engine="reference")
    digest = hashlib.sha256(
        json.dumps(dict(counts), sort_keys=True).encode()
    ).hexdigest()
    assert sum(counts.values()) == 400
    assert digest == (
        "dfdb381474ef2e1ad91bd22431273780ca235dde79ffda960645fdecd5bd78eb"
    )


def test_regression_pin_relaxation():
    circuit = QuantumCircuit(1, 1)
    circuit.x(0)
    circuit.delay(60000, 0)
    circuit.measure(0, 0)
    noise = NoiseModel(
        relaxation_enabled=True, t1={0: 50000.0}, t2={0: 50000.0}
    )
    counts = run_counts(circuit, shots=200, seed=12, noise=noise)
    assert dict(counts) == {"0": 156, "1": 44}


def test_auto_routing():
    trivial = NoiseModel.ideal()
    assert _resolve_engine(ghz3(), None, "auto") == "reference"
    assert _resolve_engine(branchy(), None, "auto") == "branchtree"
    assert _resolve_engine(branchy(), trivial, "auto") == "branchtree"
    assert _resolve_engine(branchy(), NOISE, "auto") == "batch"
    relaxing = NoiseModel(relaxation_enabled=True, t1={0: 1e4}, t2={0: 1e4})
    assert _resolve_engine(branchy(), relaxing, "auto") == "reference"
    # explicit choices pass through untouched
    for engine in ENGINES[1:]:
        assert _resolve_engine(branchy(), None, engine) == engine


def test_auto_routing_reports_stats():
    stats = SimStats()
    run_counts(branchy(), shots=50, seed=1, stats=stats)
    assert stats.counters.get("tree_shots") == 50
    stats = SimStats()
    run_counts(branchy(), shots=50, seed=1, noise=NOISE, stats=stats)
    assert stats.counters.get("batch_shots") == 50
    stats = SimStats()
    run_counts(ghz3(), shots=50, seed=1, stats=stats)
    assert stats.counters.get("terminal_shots") == 50


def test_unknown_engine_rejected():
    with pytest.raises(SimulationError, match="unknown engine"):
        run_counts(ghz3(), shots=10, engine="warp")


def test_branchtree_rejects_noise():
    with pytest.raises(SimulationError, match="noiseless"):
        run_counts(branchy(), shots=10, noise=NOISE, engine="branchtree")


def test_batch_rejects_relaxation():
    relaxing = NoiseModel(relaxation_enabled=True, t1={0: 1e4}, t2={0: 1e4})
    with pytest.raises(SimulationError, match="relaxation"):
        run_counts(branchy(), shots=10, noise=relaxing, engine="batch")


@pytest.mark.parametrize("engine", ["branchtree", "batch"])
def test_engines_match_reference_exactly(engine):
    """Seeded noiseless counts from the fast engines are bit-identical to
    the reference trajectory loop on dynamic circuits."""
    for builder in (branchy, bv6_reuse):
        circuit = builder()
        reference = run_counts(circuit, shots=700, seed=13, engine="reference")
        fast = run_counts(circuit, shots=700, seed=13, engine=engine)
        assert fast == reference, builder.__name__
