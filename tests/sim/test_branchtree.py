"""Branch-tree engine: exactness, suffix sharing, caps, and pruning."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.exceptions import SimulationError
from repro.sim import SimStats, run_counts
from repro.sim.branchtree import BranchTreeSimulator, run_branch_counts
from repro.workloads import bv_circuit


def dynamic_circuit():
    circuit = QuantumCircuit(3, 4)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.x(2).c_if(0, 1)
    circuit.reset(0)
    circuit.ry(0.8, 0)
    circuit.measure(0, 1)
    circuit.measure(1, 2)
    circuit.measure(2, 3)
    return circuit


@pytest.mark.parametrize("seed", [0, 3, 11, 29])
def test_exact_vs_reference(seed):
    circuit = dynamic_circuit()
    reference = run_counts(circuit, shots=800, seed=seed, engine="reference")
    tree = run_counts(circuit, shots=800, seed=seed, engine="branchtree")
    assert tree == reference


def test_exact_on_reuse_circuit():
    circuit = QSCaQR().sweep(bv_circuit(8))[-1].circuit
    reference = run_counts(circuit, shots=600, seed=4, engine="reference")
    tree = run_counts(circuit, shots=600, seed=4, engine="branchtree")
    assert tree == reference


def test_suffix_cache_shares_converging_histories():
    """Both reset outcomes land on the same quantum state, so the suffix
    after the reset is evolved once and the second path is a cache hit."""
    circuit = QuantumCircuit(1, 1)
    circuit.h(0)
    circuit.reset(0)
    circuit.h(0)
    circuit.measure(0, 0)
    stats = SimStats()
    counts = run_branch_counts(circuit, 400, seed=2, stats=stats)
    assert sum(counts.values()) == 400
    assert stats.counters.get("suffix_cache_hits", 0) >= 1
    assert stats.suffix_hit_rate > 0


def test_node_cap_fallback_stays_exact():
    circuit = dynamic_circuit()
    reference = run_counts(circuit, shots=500, seed=9, engine="reference")
    stats = SimStats()
    capped = run_branch_counts(circuit, 500, seed=9, max_nodes=1, stats=stats)
    assert capped == reference
    assert stats.counters.get("cap_fallback_shots", 0) > 0


def test_state_byte_cap_fallback_stays_exact():
    circuit = dynamic_circuit()
    reference = run_counts(circuit, shots=300, seed=6, engine="reference")
    capped = run_branch_counts(circuit, 300, seed=6, max_state_bytes=1)
    assert capped == reference


def test_pruning_drops_and_logs_mass():
    circuit = QuantumCircuit(1, 2)
    circuit.ry(0.2, 0)  # P(1) ~ 0.01, below the threshold
    circuit.measure(0, 0)
    circuit.h(0)
    circuit.measure(0, 1)
    stats = SimStats()
    counts = run_branch_counts(
        circuit, 500, seed=4, prune_threshold=0.05, stats=stats
    )
    # the rare first outcome is redirected onto the dominant branch
    assert all(key[0] == "0" for key in counts)
    dropped = stats.values.get("dropped_mass", 0.0)
    assert 0.0 < dropped < 0.05


def test_pruning_off_by_default():
    circuit = QuantumCircuit(1, 1)
    circuit.ry(0.2, 0)
    circuit.measure(0, 0)
    stats = SimStats()
    counts = run_branch_counts(circuit, 4000, seed=1, stats=stats)
    assert counts.get("1", 0) > 0  # rare branch still sampled
    assert "dropped_mass" not in stats.values


def test_invalid_prune_threshold():
    circuit = dynamic_circuit()
    with pytest.raises(SimulationError, match="prune_threshold"):
        BranchTreeSimulator(circuit, prune_threshold=0.7)


def test_lazy_growth_skips_dead_branches():
    """A deterministic 15-measure chain expands one node per measure —
    the dead sibling outcomes are never evolved."""
    circuit = QSCaQR().sweep(bv_circuit(16))[-1].circuit
    stats = SimStats()
    counts = run_branch_counts(circuit, 256, seed=5, stats=stats)
    assert sum(counts.values()) == 256
    measures = sum(1 for i in circuit.data if i.name in ("measure", "reset"))
    assert stats.counters["branches_expanded"] <= measures


def test_simulator_reusable_across_batches():
    circuit = dynamic_circuit()
    import random

    simulator = BranchTreeSimulator(circuit)
    first = simulator.sample(300, random.Random(9))
    second = simulator.sample(300, random.Random(9))
    assert first == second  # tree state does not leak between batches


def test_requires_clbits():
    circuit = QuantumCircuit(1, 0)
    circuit.h(0)
    with pytest.raises(SimulationError):
        run_branch_counts(circuit, 10, seed=0)
