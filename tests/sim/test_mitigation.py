"""Tests for tensored readout mitigation."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import NoiseModel, run_counts
from repro.sim.mitigation import confusion_matrix, inverse_confusion, mitigate_counts


class TestMatrices:
    def test_confusion_columns_sum_to_one(self):
        matrix = confusion_matrix(0.1)
        assert np.allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_inverse_is_inverse(self):
        for e in (0.0, 0.05, 0.2):
            product = inverse_confusion(e) @ confusion_matrix(e)
            assert np.allclose(product, np.eye(2), atol=1e-12)

    def test_bad_probability_rejected(self):
        with pytest.raises(SimulationError):
            confusion_matrix(0.5)
        with pytest.raises(SimulationError):
            confusion_matrix(-0.1)


class TestMitigateCounts:
    def _apply_noise_exactly(self, distribution, flips):
        """Forward-apply per-bit confusion to an exact distribution."""
        out = dict(distribution)
        for bit, e in enumerate(flips):
            updated = {}
            for key, p in out.items():
                for recorded in (0, 1):
                    weight = 1 - e if recorded == int(key[bit]) else e
                    new_key = key[:bit] + str(recorded) + key[bit + 1 :]
                    updated[new_key] = updated.get(new_key, 0.0) + weight * p
            out = updated
        return out

    def test_exact_inversion(self):
        ideal = {"00": 0.7, "11": 0.3}
        flips = [0.08, 0.12]
        noisy = self._apply_noise_exactly(ideal, flips)
        scaled = {k: round(v * 1_000_000) for k, v in noisy.items()}
        recovered = mitigate_counts(scaled, flips)
        for key, p in ideal.items():
            assert recovered.get(key, 0.0) == pytest.approx(p, abs=1e-4)

    def test_zero_error_is_identity(self):
        counts = {"01": 60, "10": 40}
        recovered = mitigate_counts(counts, [0.0, 0.0])
        assert recovered["01"] == pytest.approx(0.6)
        assert recovered["10"] == pytest.approx(0.4)

    def test_sampled_counts_improve(self):
        """Mitigating simulated readout noise recovers the clean answer."""
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        noise = NoiseModel.uniform(readout=0.15)
        counts = run_counts(circuit, shots=20000, seed=3, noise=noise)
        raw_mass = counts.get("10", 0) / 20000
        mitigated = mitigate_counts(counts, [0.15, 0.15])
        assert mitigated.get("10", 0.0) > raw_mass
        assert mitigated.get("10", 0.0) == pytest.approx(1.0, abs=0.02)

    def test_width_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            mitigate_counts({"00": 10}, [0.1])

    def test_inconsistent_keys_rejected(self):
        with pytest.raises(SimulationError):
            mitigate_counts({"00": 10, "000": 5}, [0.1, 0.1])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            mitigate_counts({}, [])

    def test_output_normalised(self):
        counts = {"0": 55, "1": 45}
        result = mitigate_counts(counts, [0.2])
        assert sum(result.values()) == pytest.approx(1.0)
