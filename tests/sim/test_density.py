"""Tests for the exact density-matrix simulator, including cross-validation
against the trajectory statevector sampler."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import NoiseModel, run_counts
from repro.sim.density import DensityMatrix, exact_distribution


class TestDensityMatrix:
    def test_initial_state_pure_zero(self):
        state = DensityMatrix(2)
        assert state.matrix[0, 0] == 1.0
        assert np.trace(state.matrix) == pytest.approx(1.0)

    def test_apply_x(self):
        state = DensityMatrix(1)
        from repro.circuit.gates import gate_matrix

        state.apply_unitary(gate_matrix("x"), (0,))
        assert state.matrix[1, 1] == pytest.approx(1.0)

    def test_apply_cx_on_superposition(self):
        from repro.circuit.gates import gate_matrix

        state = DensityMatrix(2)
        state.apply_unitary(gate_matrix("h"), (0,))
        state.apply_unitary(gate_matrix("cx"), (0, 1))
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[3] == pytest.approx(0.5)

    def test_measurement_probabilities(self):
        from repro.circuit.gates import gate_matrix

        state = DensityMatrix(1)
        state.apply_unitary(gate_matrix("h"), (0,))
        p0, p1 = state.measurement_probabilities(0)
        assert p0 == pytest.approx(0.5)
        assert p1 == pytest.approx(0.5)

    def test_project_renormalises(self):
        from repro.circuit.gates import gate_matrix

        state = DensityMatrix(1)
        state.apply_unitary(gate_matrix("h"), (0,))
        probability = state.project(0, 1)
        assert probability == pytest.approx(0.5)
        assert state.matrix[1, 1] == pytest.approx(1.0)

    def test_depolarizing_mixes(self):
        state = DensityMatrix(1)
        state.apply_depolarizing(0.75, (0,))
        # maximal 1Q depolarizing at p=0.75 yields the maximally mixed state
        assert state.matrix[0, 0] == pytest.approx(0.5)
        assert state.matrix[1, 1] == pytest.approx(0.5)

    def test_trace_preserved_by_channels(self):
        from repro.circuit.gates import gate_matrix

        state = DensityMatrix(2)
        state.apply_unitary(gate_matrix("h"), (0,))
        state.apply_depolarizing(0.1, (0, 1))
        assert np.trace(state.matrix).real == pytest.approx(1.0)

    def test_size_cap(self):
        with pytest.raises(SimulationError):
            DensityMatrix(11)


class TestExactDistribution:
    def test_deterministic_circuit(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        assert exact_distribution(circuit) == {"1": pytest.approx(1.0)}

    def test_bell_distribution(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        distribution = exact_distribution(circuit)
        assert distribution["00"] == pytest.approx(0.5)
        assert distribution["11"] == pytest.approx(0.5)

    def test_conditional_branching(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        circuit.measure(1, 1)
        distribution = exact_distribution(circuit)
        assert distribution["00"] == pytest.approx(0.5)
        assert distribution["11"] == pytest.approx(0.5)

    def test_measure_and_reset_reuse(self):
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure_and_reset(0, 0)
        circuit.measure(0, 1)
        distribution = exact_distribution(circuit)
        assert distribution.get("00", 0) == pytest.approx(0.5)
        assert distribution.get("10", 0) == pytest.approx(0.5)

    def test_readout_error_exact(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        noise = NoiseModel.uniform(readout=0.2)
        distribution = exact_distribution(circuit, noise)
        assert distribution["1"] == pytest.approx(0.2)
        assert distribution["0"] == pytest.approx(0.8)

    def test_requires_clbits(self):
        with pytest.raises(SimulationError):
            exact_distribution(QuantumCircuit(1, 0))


class TestCrossValidation:
    """The trajectory sampler must converge to the exact distribution."""

    def _compare(self, circuit, noise, shots=20000, tolerance=0.02):
        exact = exact_distribution(circuit, noise)
        counts = run_counts(circuit, shots=shots, seed=7, noise=noise)
        for key in set(exact) | set(counts):
            sampled = counts.get(key, 0) / shots
            assert abs(sampled - exact.get(key, 0.0)) < tolerance, key

    def test_noiseless_dynamic_circuit(self):
        circuit = QuantumCircuit(2, 3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_and_reset(0, 0)
        circuit.h(0)
        circuit.measure(0, 1)
        circuit.measure(1, 2)
        self._compare(circuit, None)

    def test_depolarizing_noise(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        noise = NoiseModel.uniform(two_qubit_error=0.15, readout=0.0)
        self._compare(circuit, noise)

    def test_readout_noise(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        noise = NoiseModel.uniform(readout=0.1)
        self._compare(circuit, noise)

    def test_combined_noise_with_conditional(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        circuit.measure(1, 1)
        noise = NoiseModel.uniform(one_qubit_error=0.05, readout=0.05)
        self._compare(circuit, noise, tolerance=0.025)
