"""Tests for physical-circuit simulation (compaction + noise remapping)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import generic_backend, ibm_mumbai, line
from repro.sim import (
    NoiseModel,
    compacted_with_noise,
    run_physical_counts,
)
from repro.transpiler import transpile
from repro.workloads import bv_circuit


class TestNoiseRemap:
    def test_remap_moves_link_errors(self):
        backend = generic_backend(line(4), seed=3)
        noise = NoiseModel.from_backend(backend)
        remapped = noise.remapped({1: 0, 2: 1})
        assert remapped.two_qubit_error[frozenset((0, 1))] == \
            noise.two_qubit_error[frozenset((1, 2))]

    def test_remap_drops_absent_qubits(self):
        backend = generic_backend(line(4), seed=3)
        noise = NoiseModel.from_backend(backend)
        remapped = noise.remapped({0: 0})
        assert remapped.two_qubit_error == {}
        assert list(remapped.readout) == [0]

    def test_remap_preserves_defaults(self):
        noise = NoiseModel.uniform(two_qubit_error=0.05, readout=0.1)
        remapped = noise.remapped({3: 0})
        assert remapped.default_two_qubit_error == 0.05
        assert remapped.default_readout == 0.1


class TestRunPhysicalCounts:
    def test_compacted_simulation_matches_semantics(self):
        backend = ibm_mumbai()
        circuit = bv_circuit(5)
        compiled = transpile(circuit, backend, optimization_level=1, seed=2)
        counts = run_physical_counts(
            compiled.circuit, backend, shots=100, seed=4,
            noise=NoiseModel.ideal(),
        )
        projected = {}
        for key, value in counts.items():
            projected[key[:4]] = projected.get(key[:4], 0) + value
        assert projected == {"1111": 100}

    def test_noise_actually_applied(self):
        backend = ibm_mumbai()
        circuit = bv_circuit(5)
        compiled = transpile(circuit, backend, optimization_level=1, seed=2)
        counts = run_physical_counts(
            compiled.circuit, backend, shots=800, seed=4, relaxation=False
        )
        assert len(counts) > 1  # errors spread the distribution

    def test_compacted_with_noise_pairs_up(self):
        backend = ibm_mumbai()
        circuit = QuantumCircuit(backend.num_qubits, 2)
        circuit.h(10)
        circuit.cx(10, 12)
        circuit.measure(10, 0)
        circuit.measure(12, 1)
        compact, noise = compacted_with_noise(circuit, backend)
        assert compact.num_qubits == 2
        # the (10, 12) link error moved to (0, 1)
        assert frozenset((0, 1)) in noise.two_qubit_error
        assert noise.two_qubit_error[frozenset((0, 1))] == \
            backend.calibration.get_cx_error(10, 12)
