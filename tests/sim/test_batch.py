"""Batched trajectory engine: exact replay, noise fidelity, sharding."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.exceptions import SimulationError
from repro.sim import NoiseModel, SimStats, exact_distribution, run_counts
from repro.sim.batch import run_batched_counts
from repro.sim.metrics import normalize_counts
from repro.workloads import bv_circuit

NOISE = NoiseModel.uniform(
    one_qubit_error=0.01, two_qubit_error=0.05, readout=0.03
)


def dynamic_circuit():
    circuit = QuantumCircuit(3, 4)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.x(2).c_if(0, 1)
    circuit.reset(0)
    circuit.ry(0.8, 0)
    circuit.measure(0, 1)
    circuit.measure(1, 2)
    circuit.measure(2, 3)
    return circuit


def _tvd_counts(a, b):
    pa, pb = normalize_counts(a), normalize_counts(b)
    keys = set(pa) | set(pb)
    return 0.5 * sum(abs(pa.get(k, 0.0) - pb.get(k, 0.0)) for k in keys)


@pytest.mark.parametrize("seed", [0, 7, 21])
def test_noiseless_exact_replay(seed):
    """Unconditioned measures/resets: seeded counts are bit-identical to
    the reference loop (the engine pre-draws the same uniforms)."""
    circuit = dynamic_circuit()
    reference = run_counts(circuit, shots=900, seed=seed, engine="reference")
    batched = run_counts(circuit, shots=900, seed=seed, engine="batch")
    assert batched == reference


def test_terminal_circuits_delegate_to_fast_path():
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    stats = SimStats()
    batched = run_counts(circuit, shots=800, seed=3, engine="batch", stats=stats)
    reference = run_counts(circuit, shots=800, seed=3, engine="reference")
    assert batched == reference
    assert stats.counters.get("terminal_shots") == 800


def test_conditioned_measure_distribution():
    """Conditioned measurements disable exact replay; the distribution
    still matches the exact density-matrix result."""
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.measure(0, 0)
    circuit.h(1)
    circuit.measure(1, 1).c_if(0, 1)
    exact = exact_distribution(circuit)
    counts = run_batched_counts(circuit, 8192, seed=5)
    assert _tvd_counts(counts, {k: v * 8192 for k, v in exact.items()}) < 0.02


@pytest.mark.slow
def test_noisy_matches_exact_distribution():
    """Batched noisy sampling converges on the exact noisy distribution."""
    circuit = QuantumCircuit(2, 2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    exact = exact_distribution(circuit, noise=NOISE)
    counts = run_batched_counts(circuit, 8192, seed=11, noise=NOISE)
    assert _tvd_counts(counts, {k: v * 8192 for k, v in exact.items()}) < 0.02


@pytest.mark.slow
def test_noisy_matches_reference_tvd():
    circuit = dynamic_circuit()
    reference = run_counts(
        circuit, shots=8192, seed=2, noise=NOISE, engine="reference"
    )
    batched = run_counts(circuit, shots=8192, seed=2, noise=NOISE, engine="batch")
    assert _tvd_counts(reference, batched) < 0.02


def test_fusion_counter_and_invariance():
    circuit = QSCaQR().sweep(bv_circuit(6))[-1].circuit
    stats = SimStats()
    fused = run_batched_counts(circuit, 500, seed=7, stats=stats)
    unfused = run_batched_counts(circuit, 500, seed=7, fuse=False)
    assert fused == unfused
    assert stats.counters.get("fused_gates", 0) > 0


def test_parallel_matches_serial():
    """Force the process pool on and pin its counts against the serial
    path — sharding and seeding are independent of the worker count."""
    circuit = dynamic_circuit()
    stats = SimStats()
    parallel = run_batched_counts(
        circuit,
        2000,
        seed=9,
        noise=NOISE,
        shard_size=512,
        parallel_threshold=0,
        max_workers=2,
        stats=stats,
    )
    serial = run_batched_counts(
        circuit, 2000, seed=9, noise=NOISE, shard_size=512, parallel=False
    )
    assert parallel == serial
    assert stats.counters.get("parallel_batches", 0) == 1
    assert stats.counters.get("batch_shards") == 4


def test_shard_remainder():
    circuit = dynamic_circuit()
    stats = SimStats()
    counts = run_batched_counts(
        circuit, 1000, seed=1, shard_size=300, stats=stats
    )
    assert sum(counts.values()) == 1000
    assert stats.counters.get("batch_shards") == 4  # 300+300+300+100


def test_rejects_relaxation():
    relaxing = NoiseModel(relaxation_enabled=True, t1={0: 1e4}, t2={0: 1e4})
    with pytest.raises(SimulationError, match="relaxation"):
        run_batched_counts(dynamic_circuit(), 10, seed=0, noise=relaxing)


def test_requires_clbits():
    circuit = QuantumCircuit(1, 0)
    circuit.h(0)
    with pytest.raises(SimulationError):
        run_batched_counts(circuit, 10, seed=0)
