"""Tests for distribution and fidelity metrics."""

import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import generic_backend, line
from repro.sim import (
    estimated_success_probability,
    hellinger_fidelity,
    normalize_counts,
    success_rate,
    total_variation_distance,
)


class TestTVD:
    def test_identical_distributions(self):
        assert total_variation_distance({"0": 0.5, "1": 0.5}, {"0": 0.5, "1": 0.5}) == 0

    def test_disjoint_distributions(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)

    def test_accepts_raw_counts(self):
        assert total_variation_distance({"0": 500, "1": 500}, {"0": 1000}) == \
            pytest.approx(0.5)

    def test_symmetry(self):
        p = {"00": 0.7, "11": 0.3}
        q = {"00": 0.4, "01": 0.6}
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_bounded_by_one(self):
        p = {"a": 0.2, "b": 0.8}
        q = {"c": 0.9, "d": 0.1}
        assert 0 <= total_variation_distance(p, q) <= 1


class TestSuccessAndFidelity:
    def test_success_rate(self):
        assert success_rate({"101": 75, "000": 25}, "101") == 0.75

    def test_success_rate_missing_key(self):
        assert success_rate({"000": 10}, "111") == 0.0

    def test_empty_counts_raise(self):
        with pytest.raises(ValueError):
            success_rate({}, "0")
        with pytest.raises(ValueError):
            normalize_counts({})

    def test_hellinger_identical(self):
        assert hellinger_fidelity({"0": 1.0}, {"0": 2.0}) == pytest.approx(1.0)

    def test_hellinger_disjoint(self):
        assert hellinger_fidelity({"0": 1.0}, {"1": 1.0}) == pytest.approx(0.0)


class TestESP:
    def _backend(self):
        return generic_backend(line(4), seed=5)

    def test_empty_circuit_has_unit_esp(self):
        circuit = QuantumCircuit(2)
        esp = estimated_success_probability(circuit, self._backend().calibration)
        assert esp == pytest.approx(1.0)

    def test_esp_decreases_with_gates(self):
        backend = self._backend()
        short = QuantumCircuit(2)
        short.cx(0, 1)
        long = QuantumCircuit(2)
        for _ in range(10):
            long.cx(0, 1)
        esp_short = estimated_success_probability(short, backend.calibration)
        esp_long = estimated_success_probability(long, backend.calibration)
        assert esp_long < esp_short < 1.0

    def test_swap_costs_three_cx(self):
        backend = self._backend()
        swap_circuit = QuantumCircuit(2)
        swap_circuit.swap(0, 1)
        cx3 = QuantumCircuit(2)
        for _ in range(3):
            cx3.cx(0, 1)
        esp_swap = estimated_success_probability(
            swap_circuit, backend.calibration, include_decoherence=False
        )
        esp_cx3 = estimated_success_probability(
            cx3, backend.calibration, include_decoherence=False
        )
        assert esp_swap == pytest.approx(esp_cx3)

    def test_measurement_readout_counted(self):
        backend = self._backend()
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        esp = estimated_success_probability(
            circuit, backend.calibration, include_decoherence=False
        )
        assert esp == pytest.approx(1 - backend.calibration.get_readout_error(0))

    def test_decoherence_penalises_long_circuits(self):
        backend = self._backend()
        idle = QuantumCircuit(2)
        idle.cx(0, 1)
        idle.delay(500000, 0)
        idle.cx(0, 1)
        tight = QuantumCircuit(2)
        tight.cx(0, 1)
        tight.cx(0, 1)
        esp_idle = estimated_success_probability(idle, backend.calibration)
        esp_tight = estimated_success_probability(tight, backend.calibration)
        assert esp_idle < esp_tight
