"""Tests for the statevector simulator, including dynamic-circuit ops."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import NoiseModel, Statevector, final_statevector, run_counts


class TestStatevector:
    def test_initial_state(self):
        state = Statevector(2)
        assert state.amplitudes[0] == 1.0
        assert np.allclose(state.probabilities().sum(), 1.0)

    def test_apply_x(self):
        state = Statevector(2)
        from repro.circuit.gates import gate_matrix

        state.apply_matrix(gate_matrix("x"), (0,))
        # qubit 0 is the most significant bit: |10> = index 2
        assert abs(state.amplitudes[2]) == pytest.approx(1.0)

    def test_apply_cx_entangles(self):
        from repro.circuit.gates import gate_matrix

        state = Statevector(2)
        state.apply_matrix(gate_matrix("h"), (0,))
        state.apply_matrix(gate_matrix("cx"), (0, 1))
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[3] == pytest.approx(0.5)

    def test_probability_of_one(self):
        from repro.circuit.gates import gate_matrix

        state = Statevector(1)
        state.apply_matrix(gate_matrix("h"), (0,))
        assert state.probability_of_one(0) == pytest.approx(0.5)

    def test_collapse_normalizes(self):
        from repro.circuit.gates import gate_matrix

        state = Statevector(1)
        state.apply_matrix(gate_matrix("h"), (0,))
        state.collapse(0, 1)
        assert state.probability_of_one(0) == pytest.approx(1.0)

    def test_too_many_qubits_rejected(self):
        with pytest.raises(SimulationError):
            Statevector(30)


class TestRunCounts:
    def test_deterministic_x(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        counts = run_counts(circuit, shots=100, seed=1)
        assert counts == {"1": 100}

    def test_bell_statistics(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        counts = run_counts(circuit, shots=4000, seed=2)
        assert set(counts) == {"00", "11"}
        assert abs(counts["00"] - 2000) < 200

    def test_key_ordering_clbit0_leftmost(self):
        circuit = QuantumCircuit(2, 2)
        circuit.x(1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        counts = run_counts(circuit, shots=10, seed=3)
        assert counts == {"01": 10}

    def test_mid_circuit_measure_and_conditional(self):
        """Teleport-style feed-forward: X conditioned on a measured 1."""
        circuit = QuantumCircuit(2, 2)
        circuit.x(0)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)  # fires because q0 measured 1
        circuit.measure(1, 1)
        counts = run_counts(circuit, shots=50, seed=4)
        assert counts == {"11": 50}

    def test_conditional_does_not_fire_on_zero(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        circuit.measure(1, 1)
        counts = run_counts(circuit, shots=50, seed=5)
        assert counts == {"00": 50}

    def test_measure_and_reset_reuse_wire(self):
        """The paper's reuse primitive: one wire, two logical qubits."""
        circuit = QuantumCircuit(1, 2)
        circuit.x(0)                      # first logical qubit -> |1>
        circuit.measure_and_reset(0, 0)   # read 1, reset wire
        circuit.measure(0, 1)             # second logical qubit must read 0
        counts = run_counts(circuit, shots=100, seed=6)
        assert counts == {"10": 100}

    def test_builtin_reset_equivalent(self):
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure_and_reset(0, 0, style="builtin")
        circuit.measure(0, 1)
        counts = run_counts(circuit, shots=200, seed=7)
        # second measurement always reads 0 regardless of the first
        assert all(key[1] == "0" for key in counts)

    def test_shots_must_be_positive(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        with pytest.raises(SimulationError):
            run_counts(circuit, shots=0)

    def test_requires_clbits(self):
        circuit = QuantumCircuit(1, 0)
        with pytest.raises(SimulationError):
            run_counts(circuit, shots=10)

    def test_fast_path_matches_trajectory_path(self):
        """GHZ counts via the fast path equal trajectory-path counts."""
        fast = QuantumCircuit(3, 3)
        fast.h(0)
        fast.cx(0, 1)
        fast.cx(1, 2)
        fast.measure(0, 0)
        fast.measure(1, 1)
        fast.measure(2, 2)
        slow = fast.copy()
        slow.reset(2)  # force the trajectory path (after measuring)
        # remove the reset's effect by measuring before it: rebuild properly
        slow = QuantumCircuit(3, 3)
        slow.h(0)
        slow.cx(0, 1)
        slow.cx(1, 2)
        slow.measure(0, 0)
        slow.measure(1, 1)
        slow.measure(2, 2)
        slow.reset(0)
        counts_fast = run_counts(fast, shots=3000, seed=8)
        counts_slow = run_counts(slow, shots=3000, seed=8)
        assert set(counts_fast) == {"000", "111"}
        assert set(counts_slow) == {"000", "111"}
        assert abs(counts_fast["000"] - counts_slow["000"]) < 200


class TestFinalStatevector:
    def test_ghz_amplitudes(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        state = final_statevector(circuit)
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(state[3]) == pytest.approx(1 / math.sqrt(2))

    def test_reset_forces_ground(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.reset(0)
        state = final_statevector(circuit, seed=0)
        assert abs(state[0]) == pytest.approx(1.0)


class TestNoisySimulation:
    def test_readout_error_flips_results(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        noise = NoiseModel.uniform(readout=0.3)
        counts = run_counts(circuit, shots=2000, seed=9, noise=noise)
        assert 0.2 < counts.get("1", 0) / 2000 < 0.4

    def test_two_qubit_depolarizing_degrades_bell(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        noise = NoiseModel.uniform(two_qubit_error=0.5, readout=0.0)
        counts = run_counts(circuit, shots=2000, seed=10, noise=noise)
        bad_mass = (counts.get("01", 0) + counts.get("10", 0)) / 2000
        assert bad_mass > 0.1

    def test_ideal_noise_model_is_noiseless(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.measure(0, 0)
        counts = run_counts(circuit, shots=500, seed=11, noise=NoiseModel.ideal())
        assert counts == {"1": 500}

    def test_relaxation_decays_excited_state(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0)
        circuit.delay(200000, 0)  # long idle period
        circuit.measure(0, 0)
        noise = NoiseModel(relaxation_enabled=True, t1={0: 50000.0}, t2={0: 50000.0})
        counts = run_counts(circuit, shots=1000, seed=12, noise=noise)
        # after 4 T1 most population has decayed to |0>
        assert counts.get("0", 0) > 800

    def test_more_noise_means_worse(self):
        """Noise monotonicity sanity: higher CX error -> lower success."""
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)

        def good_mass(error):
            noise = NoiseModel.uniform(two_qubit_error=error)
            counts = run_counts(circuit, shots=2000, seed=13, noise=noise)
            return (counts.get("00", 0) + counts.get("11", 0)) / 2000

        assert good_mass(0.3) < good_mass(0.01)
