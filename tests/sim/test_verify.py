"""Tests for the equivalence-verification helpers."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.exceptions import SimulationError
from repro.sim.verify import assert_equivalent, distributions_tvd, marginal_counts
from repro.workloads import bv_circuit


class TestMarginalCounts:
    def test_projection_merges(self):
        counts = {"000": 10, "001": 5, "100": 3}
        assert marginal_counts(counts, 2) == {"00": 15, "10": 3}

    def test_full_width_identity(self):
        counts = {"01": 7}
        assert marginal_counts(counts, 2) == counts

    def test_bad_width(self):
        with pytest.raises(SimulationError):
            marginal_counts({"0": 1}, 0)


class TestDistributionsTVD:
    def test_identical_circuits(self):
        a = bv_circuit(4)
        assert distributions_tvd(a, a.copy()) == pytest.approx(0.0)

    def test_reused_circuit_matches_original(self):
        original = bv_circuit(5)
        reused = QSCaQR().reduce_to(original, 2).circuit
        assert distributions_tvd(original, reused, shots=500) < 0.01

    def test_different_circuits_far_apart(self):
        a = QuantumCircuit(1, 1)
        a.measure(0, 0)
        b = QuantumCircuit(1, 1)
        b.x(0)
        b.measure(0, 0)
        assert distributions_tvd(a, b, shots=200) == pytest.approx(1.0)

    def test_default_width_uses_smaller_clbit_count(self):
        wide = QuantumCircuit(1, 3)
        wide.x(0)
        wide.measure(0, 0)
        narrow = QuantumCircuit(1, 1)
        narrow.x(0)
        narrow.measure(0, 0)
        assert distributions_tvd(wide, narrow, shots=100) == pytest.approx(0.0)


class TestAssertEquivalent:
    def test_passes_on_equivalent(self):
        original = bv_circuit(4)
        reused = QSCaQR().reduce_to(original, 2).circuit
        assert_equivalent(original, reused, shots=400)

    def test_raises_on_different(self):
        a = QuantumCircuit(1, 1)
        a.measure(0, 0)
        b = QuantumCircuit(1, 1)
        b.x(0)
        b.measure(0, 0)
        with pytest.raises(SimulationError):
            assert_equivalent(a, b, shots=200)
