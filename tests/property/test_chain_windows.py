"""Differential harness: the chain engine vs. greedy QS and the oracle.

:class:`~repro.core.chains.ChainReuse` promises three things across
arbitrary circuits: its transformed output stays observationally
equivalent to the input, its width never exceeds the greedy QS sweep
(the greedy guard makes this a hard invariant, not a heuristic hope),
and on oracle-sized circuits it lands on the proven optimum almost
always — the beam is supposed to close most of the greedy-vs-optimal
gap, so the harness pins a >= 95% optimum-match rate.

The pool reuses the exact-oracle recipe (mixed widths, gate densities,
with and without terminal measurements).  ``CAQR_CHAIN_SAMPLES`` scales
it (default 200; the nightly ``chain-diff`` CI job runs 500), and
``CAQR_CHAIN_GAP_JSON`` makes the gap-distribution test write its
summary as a JSON artifact for trend tracking.
"""

import json
import os

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.core.chains import ChainReuse
from repro.core.exact import exact_minimum_qubits
from repro.core.qs_caqr import QSCaQR
from repro.sim.verify import assert_equivalent
from repro.workloads import bv_circuit, ghz_measured

CHAIN_SAMPLES = int(os.environ.get("CAQR_CHAIN_SAMPLES", "200"))


def _sample_circuit(seed: int) -> QuantumCircuit:
    """3-8 qubits, mixed densities, with and without measurements —
    the same pool the exact-oracle harness draws from, so the two
    differential tiers stay comparable."""
    num_qubits = 3 + seed % 6
    num_gates = 6 + (seed * 7) % 14
    return random_circuit(
        num_qubits,
        num_gates=num_gates,
        seed=seed,
        two_qubit_fraction=0.35 + 0.3 * ((seed // 4) % 2),
        measure=seed % 3 != 0,
    )


# -- width: never wider than greedy QS ----------------------------------------


@pytest.mark.parametrize("seed", range(CHAIN_SAMPLES))
def test_chain_never_wider_than_greedy_qs(seed):
    """The greedy-guard contract: on every circuit the chain engine's
    width is bounded above by the greedy QS sweep."""
    circuit = _sample_circuit(seed)
    chain = ChainReuse().run(circuit)
    greedy = QSCaQR(parallel=False).minimum_qubits(circuit)
    assert chain.qubits <= greedy, (
        f"seed={seed}: chain reached {chain.qubits} qubits, greedy "
        f"managed {greedy} — the greedy guard is broken"
    )
    # the result is self-consistent: claimed width is the real width,
    # and the floor is a true lower bound on it
    assert chain.circuit.num_qubits == chain.qubits, f"seed={seed}"
    assert chain.qubits >= chain.floor, f"seed={seed}"


# -- soundness: simulator equivalence -----------------------------------------


@pytest.mark.parametrize(
    "seed", [s for s in range(0, CHAIN_SAMPLES, 5) if s % 3 != 0]
)
def test_chain_output_equivalent(seed):
    """The materialised chain circuit is observationally equivalent to
    the input (measured samples only — sampling needs clbits)."""
    circuit = _sample_circuit(seed)
    result = ChainReuse().run(circuit)
    assert_equivalent(circuit, result.circuit)


@pytest.mark.parametrize("seed", range(0, CHAIN_SAMPLES, 10))
def test_dual_register_output_equivalent(seed):
    """The dual-register cost model changes which plan wins, never
    whether the transform is sound."""
    circuit = _sample_circuit(seed)
    if not any(ins.name == "measure" for ins in circuit.data):
        pytest.skip("dual-register equivalence needs sampled outputs")
    result = ChainReuse(dual_register=True).run(circuit)
    assert_equivalent(circuit, result.circuit)


# -- optimality: the oracle match rate ----------------------------------------


def test_chain_matches_oracle_width_on_small_circuits():
    """On oracle-sized circuits the beam finds the proven optimum at
    least 95% of the time — the quality bar that separates 'joint chain
    discovery' from 'greedy with extra steps'."""
    total = 0
    matched = 0
    misses = []
    for seed in range(0, CHAIN_SAMPLES, 2):
        circuit = _sample_circuit(seed)
        if circuit.num_qubits > 10:
            continue
        total += 1
        chain = ChainReuse().minimum_qubits(circuit)
        optimal = exact_minimum_qubits(circuit)
        assert chain >= optimal, (
            f"seed={seed}: chain claims {chain} < proven optimum {optimal}"
        )
        if chain == optimal:
            matched += 1
        else:
            misses.append((seed, chain, optimal))
    assert total > 0
    rate = matched / total
    assert rate >= 0.95, (
        f"chain matched the oracle on {matched}/{total} circuits "
        f"({rate:.1%}); first misses: {misses[:5]}"
    )


# -- gap distribution ----------------------------------------------------------


def test_gap_distribution():
    """Chain-vs-optimal width gap across the pool: never negative,
    summarized (and optionally exported) for trend tracking."""
    gaps = {}
    for seed in range(0, CHAIN_SAMPLES, 5):
        circuit = _sample_circuit(seed)
        chain = ChainReuse().minimum_qubits(circuit)
        optimal = exact_minimum_qubits(circuit)
        gap = chain - optimal
        assert gap >= 0, f"seed={seed}: negative gap {gap}"
        gaps[seed] = gap
    values = sorted(gaps.values())
    summary = {
        "samples": len(values),
        "max_gap": values[-1],
        "mean_gap": sum(values) / len(values),
        "nonzero": sum(1 for g in values if g),
        "by_gap": {str(g): values.count(g) for g in sorted(set(values))},
    }
    artifact = os.environ.get("CAQR_CHAIN_GAP_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    # the beam closes nearly the whole greedy gap on this pool
    assert summary["max_gap"] <= 1, summary


# -- budgeted mode -------------------------------------------------------------


@pytest.mark.parametrize("seed", range(0, CHAIN_SAMPLES, 20))
def test_reduce_to_respects_feasibility_flag(seed):
    """``reduce_to`` either lands within the budget (feasible) or says
    so honestly — and the budgeted output stays equivalent."""
    circuit = _sample_circuit(seed)
    engine = ChainReuse()
    floor = engine.run(circuit).qubits
    budget = max(floor, 2)
    result = engine.reduce_to(circuit, budget)
    assert result.feasible
    assert result.qubits <= budget
    if any(ins.name == "measure" for ins in circuit.data):
        assert_equivalent(circuit, result.circuit)
    starved = engine.reduce_to(circuit, 1)
    if circuit.num_qubits > 1 and floor > 1:
        assert not starved.feasible
        assert starved.qubits > 1


# -- pinned hand-computable fixtures -------------------------------------------


@pytest.mark.parametrize(
    "circuit,optimal",
    [
        pytest.param(bv_circuit(4), 2, id="bv4"),
        pytest.param(ghz_measured(5), 2, id="ghz5"),
    ],
)
def test_pinned_optima(circuit, optimal):
    result = ChainReuse().run(circuit)
    assert result.qubits == optimal
    assert_equivalent(circuit, result.circuit)
