"""Property-based tests for the simulators and mitigation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit, gates
from repro.sim import run_counts
from repro.sim.density import exact_distribution
from repro.sim.mitigation import mitigate_counts
from repro.sim.statevector import Statevector
from tests.property.strategies import circuits


class TestStatevectorInvariants:
    @given(circuits(max_qubits=3, max_gates=10))
    @settings(max_examples=30, deadline=None)
    def test_unitary_evolution_preserves_norm(self, circuit):
        state = Statevector(circuit.num_qubits)
        for instruction in circuit.data:
            if instruction.is_unitary():
                state.apply_matrix(
                    gates.gate_matrix(instruction.name, instruction.params),
                    instruction.qubits,
                )
        assert np.isclose(np.linalg.norm(state.amplitudes), 1.0, atol=1e-9)

    @given(circuits(max_qubits=3, max_gates=8, terminal_measures=True))
    @settings(max_examples=30, deadline=None)
    def test_counts_sum_to_shots(self, circuit):
        counts = run_counts(circuit, shots=64, seed=1)
        assert sum(counts.values()) == 64
        for key in counts:
            assert len(key) == circuit.num_clbits


class TestDensityCrossValidation:
    @given(circuits(min_qubits=2, max_qubits=2, max_gates=6, terminal_measures=True))
    @settings(max_examples=10, deadline=None)
    def test_sampler_converges_to_exact(self, circuit):
        exact = exact_distribution(circuit)
        counts = run_counts(circuit, shots=8000, seed=5)
        for key in set(exact) | set(counts):
            sampled = counts.get(key, 0) / 8000
            assert abs(sampled - exact.get(key, 0.0)) < 0.04, key


class TestMitigationProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["00", "01", "10", "11"]),
            st.integers(1, 500),
            min_size=1,
        ),
        st.floats(0.0, 0.25),
        st.floats(0.0, 0.25),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_is_distribution(self, counts, e0, e1):
        result = mitigate_counts(counts, [e0, e1])
        assert abs(sum(result.values()) - 1.0) < 1e-9
        assert all(p >= 0 for p in result.values())

    @given(
        st.dictionaries(
            st.sampled_from(["0", "1"]), st.integers(1, 500), min_size=1
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_zero_error_identity(self, counts):
        result = mitigate_counts(counts, [0.0])
        total = sum(counts.values())
        for key, value in counts.items():
            assert result[key] == value / total
