"""Property-based tests for routing, optimisation, and scheduling."""

import numpy as np
from hypothesis import assume, given, settings

from repro.sim import final_statevector
from repro.transpiler import (
    cancel_adjacent_self_inverse,
    merge_single_qubit_runs,
    sabre_route,
    schedule_asap,
)
from tests.property.strategies import circuits, connected_couplings


def _states_equal_up_to_phase(a, b, atol=1e-8):
    index = int(np.argmax(np.abs(b)))
    if abs(b[index]) < atol:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


class TestRoutingProperties:
    @given(circuits(max_qubits=4, max_gates=12), connected_couplings(4, 6))
    @settings(max_examples=25, deadline=None)
    def test_routed_circuit_is_hardware_compliant(self, circuit, coupling):
        assume(circuit.num_qubits <= coupling.num_qubits)
        result = sabre_route(circuit, coupling, seed=3)
        for instruction in result.circuit.data:
            if len(instruction.qubits) == 2 and not instruction.is_directive():
                assert coupling.are_adjacent(*instruction.qubits)

    @given(circuits(max_qubits=4, max_gates=12), connected_couplings(4, 6))
    @settings(max_examples=25, deadline=None)
    def test_routing_preserves_gate_counts(self, circuit, coupling):
        assume(circuit.num_qubits <= coupling.num_qubits)
        result = sabre_route(circuit, coupling, seed=3)
        before = circuit.count_ops()
        after = result.circuit.count_ops()
        for name, count in before.items():
            if name != "swap":
                assert after[name] == count

    @given(circuits(max_qubits=4, max_gates=12), connected_couplings(4, 6))
    @settings(max_examples=25, deadline=None)
    def test_final_layout_is_permutation(self, circuit, coupling):
        assume(circuit.num_qubits <= coupling.num_qubits)
        result = sabre_route(circuit, coupling, seed=3)
        mapped = result.final_layout.as_dict()
        assert sorted(mapped.keys()) == list(range(circuit.num_qubits))
        assert len(set(mapped.values())) == circuit.num_qubits


class TestOptimizationProperties:
    @given(circuits(max_qubits=3, max_gates=12))
    @settings(max_examples=25, deadline=None)
    def test_merge_1q_preserves_state(self, circuit):
        merged = merge_single_qubit_runs(circuit)
        assert _states_equal_up_to_phase(
            final_statevector(merged), final_statevector(circuit)
        )

    @given(circuits(max_qubits=3, max_gates=12))
    @settings(max_examples=25, deadline=None)
    def test_cancellation_preserves_state(self, circuit):
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert len(cancelled) <= len(circuit)
        assert _states_equal_up_to_phase(
            final_statevector(cancelled), final_statevector(circuit)
        )


class TestSchedulingProperties:
    @given(circuits(terminal_measures=True))
    @settings(max_examples=40, deadline=None)
    def test_entries_never_overlap_on_a_wire(self, circuit):
        schedule = schedule_asap(circuit)
        for qubit in range(circuit.num_qubits):
            windows = sorted(
                (entry.start, entry.finish)
                for entry in schedule.entries
                if qubit in entry.instruction.qubits
            )
            for (s1, f1), (s2, _f2) in zip(windows, windows[1:]):
                assert s2 >= f1

    @given(circuits(terminal_measures=True))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, circuit):
        schedule = schedule_asap(circuit)
        longest = max((e.duration for e in schedule.entries), default=0)
        total = sum(e.duration for e in schedule.entries)
        assert longest <= schedule.makespan <= total
