"""Shared hypothesis strategies for the property-based tests."""

from __future__ import annotations

import networkx as nx
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit

_ONE_QUBIT = ["x", "h", "s", "t", "sx"]
_ROTATIONS = ["rz", "rx", "ry"]
_TWO_QUBIT = ["cx", "cz", "rzz"]


@st.composite
def circuits(
    draw,
    min_qubits: int = 1,
    max_qubits: int = 5,
    max_gates: int = 20,
    terminal_measures: bool = False,
):
    """A random circuit over a small number of qubits.

    When *terminal_measures* is set, every qubit gets a final measurement
    into the same-index classical bit (the shape CaQR benchmarks have).
    """
    num_qubits = draw(st.integers(min_qubits, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    circuit = QuantumCircuit(
        num_qubits, num_qubits if terminal_measures else 0, name="hyp"
    )
    for _ in range(num_gates):
        if num_qubits >= 2 and draw(st.booleans()):
            name = draw(st.sampled_from(_TWO_QUBIT))
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            if name == "rzz":
                circuit.rzz(draw(st.floats(0.01, 3.0)), a, b)
            else:
                getattr(circuit, name)(a, b)
        else:
            q = draw(st.integers(0, num_qubits - 1))
            if draw(st.booleans()):
                circuit.rz(draw(st.floats(0.01, 3.0)), q)
            else:
                getattr(circuit, draw(st.sampled_from(_ONE_QUBIT)))(q)
    if terminal_measures:
        for q in range(num_qubits):
            circuit.measure(q, q)
    return circuit


@st.composite
def problem_graphs(draw, min_nodes: int = 3, max_nodes: int = 10):
    """A random simple graph with vertices 0..n-1 and >= 1 edge."""
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return graph


@st.composite
def connected_couplings(draw, min_qubits: int = 2, max_qubits: int = 8):
    """A connected coupling map (random spanning tree + extra edges)."""
    from repro.hardware import CouplingMap

    n = draw(st.integers(min_qubits, max_qubits))
    edges = {(i, draw(st.integers(0, i - 1))) for i in range(1, n)}
    possible = [(a, b) for a in range(n) for b in range(a + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=6, unique=True))
    edges.update(extra)
    return CouplingMap(n, [tuple(sorted(e)) for e in edges])
