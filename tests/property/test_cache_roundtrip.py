"""Differential harness: warm-cache reports vs. cold compiles.

The compile cache's contract is that serving a fingerprint from the
store is *indistinguishable* from recompiling: every field of the
:class:`~repro.compile_api.CompileReport` — the instruction stream, the
metric sets, the benefit verdict, the router stats — must round-trip the
serialization codec exactly.  The harness drives ``CAQR_CACHE_SAMPLES``
random circuits (default 40, raise via the environment for nightly runs)
through a cold compile and a warm lookup and fails loudly on the first
field that drifts, printing the offending seed.
"""

import os

import pytest

from repro.circuit.random import random_circuit
from repro.compile_api import caqr_compile
from repro.hardware import ibm_mumbai
from repro.service import CompileService
from repro.workloads import bv_circuit, random_graph

CACHE_SAMPLES = int(os.environ.get("CAQR_CACHE_SAMPLES", "40"))

FIELDS = [
    "mode",
    "metrics",
    "baseline_metrics",
    "reuse_beneficial",
    "qubit_saving",
]
# route_stats/eval_stats/sim_stats counters and gauges are deterministic
# across cold runs; their *timers* are wall-clock, so they are only
# pinned warm-vs-primed (the warm entry must replay the exact run that
# populated the cache)

#: (field, has a gauge/values dict) — the per-domain stats riding on the
#: report since schema v3
STATS_FIELDS = [("route_stats", True), ("eval_stats", False), ("sim_stats", True)]


def _assert_stats_field(report, cold, field, has_values, context):
    cold_stats = getattr(cold, field)
    got = getattr(report, field)
    if cold_stats is None:
        assert got is None, f"{context}: {field} appeared from nowhere"
        return
    assert got.counters == cold_stats.counters, (
        f"{context}: {field} counters drifted"
    )
    if has_values:
        assert got.values == cold_stats.values, (
            f"{context}: {field} gauges drifted"
        )


def _sample_circuit(seed: int):
    """Mirror of the incremental-engine differential pool (3-6 qubits,
    mixed gate pools, with and without terminal measurements)."""
    num_qubits = 3 + seed % 4
    num_gates = 6 + (seed * 7) % 12
    return random_circuit(
        num_qubits,
        num_gates=num_gates,
        seed=seed,
        two_qubit_fraction=0.35 + 0.3 * ((seed // 4) % 2),
        measure=seed % 3 != 0,
    )


def _assert_warm_equals_cold(target, context, service=None, **knobs):
    service = service if service is not None else CompileService()
    cold = caqr_compile(target, **knobs)
    primed = service.compile(target, **knobs)
    warm = service.compile(target, **knobs)
    assert primed.from_cache is False, context
    assert warm.from_cache is True, context
    for report in (primed, warm):
        label = "primed" if report is primed else "warm"
        assert report.circuit.num_qubits == cold.circuit.num_qubits, (
            f"{context}: {label} circuit width drifted"
        )
        assert report.circuit.num_clbits == cold.circuit.num_clbits, (
            f"{context}: {label} clbit count drifted"
        )
        assert report.circuit.data == cold.circuit.data, (
            f"{context}: {label} instruction stream drifted"
        )
        for name in FIELDS:
            assert getattr(report, name) == getattr(cold, name), (
                f"{context}: {label} field {name!r} drifted"
            )
        for field, has_values in STATS_FIELDS:
            _assert_stats_field(report, cold, field, has_values, f"{context}: {label}")
    # the warm report replays the primed run exactly, timers included
    assert warm.route_stats == primed.route_stats, context
    assert warm.eval_stats == primed.eval_stats, context
    assert warm.sim_stats == primed.sim_stats, context


@pytest.mark.parametrize("seed", range(CACHE_SAMPLES))
def test_random_circuit_roundtrip(seed):
    mode = "max_reuse" if seed % 2 else "min_depth"
    _assert_warm_equals_cold(
        _sample_circuit(seed), f"seed={seed} mode={mode}", mode=mode
    )


@pytest.mark.parametrize("seed", range(0, CACHE_SAMPLES, 5))
def test_random_circuit_roundtrip_on_disk(seed, tmp_path):
    """Same contract through the persistent tier (a fresh service reads
    back what another instance wrote)."""
    circuit = _sample_circuit(seed)
    writer = CompileService(cache_dir=str(tmp_path))
    cold = caqr_compile(circuit)
    writer.compile(circuit)
    reader = CompileService(cache_dir=str(tmp_path))
    warm = reader.compile(circuit)
    assert warm.from_cache is True
    assert warm.circuit.data == cold.circuit.data, f"seed={seed}"
    for name in FIELDS:
        assert getattr(warm, name) == getattr(cold, name), (
            f"seed={seed}: field {name!r} drifted across processes"
        )


def test_bv_budget_roundtrip():
    _assert_warm_equals_cold(
        bv_circuit(8), "bv8 budget", mode="qubit_budget", qubit_limit=2
    )


def test_graph_target_roundtrip():
    _assert_warm_equals_cold(
        random_graph(8, 0.3, seed=11), "qaoa graph", mode="max_reuse"
    )


def test_min_swap_roundtrip():
    """Hardware-mapped reports (router stats attached) round-trip too."""
    _assert_warm_equals_cold(
        bv_circuit(6), "bv6 min_swap", backend=ibm_mumbai(), mode="min_swap"
    )


def _pinned_in_band_backend(wiggle):
    """A Mumbai snapshot whose banded values sit at band centres * wiggle.

    With ``calib_bands=2`` a band spans ~3.16x, so any wiggle below
    1.78x provably stays inside the band — the snapshots differ exactly,
    agree banded.
    """
    from repro.service import band_value

    backend = ibm_mumbai()
    calibration = backend.calibration
    for mapping in (
        calibration.cx_error,
        calibration.readout_error,
        calibration.sq_error,
        calibration.t1_dt,
        calibration.t2_dt,
    ):
        for key, value in mapping.items():
            centre = 10.0 ** ((band_value(value, 2) + 0.5) / 2)
            mapping[key] = centre * wiggle
    return backend


@pytest.mark.parametrize("seed", range(0, CACHE_SAMPLES, 10))
def test_banded_warm_hit_is_indistinguishable(seed):
    """A warm hit served across in-band calibration drift must be
    field-for-field identical to the report that populated the entry —
    banding may only ever *reuse* a decision, never alter one."""
    circuit = _sample_circuit(seed)
    service = CompileService()
    day_zero = _pinned_in_band_backend(1.0)
    drifted = _pinned_in_band_backend(1.0 + 0.02 * (1 + seed % 5))
    primed = service.compile(
        circuit, backend=day_zero, mode="min_swap", calib_bands=2
    )
    warm = service.compile(
        circuit, backend=drifted, mode="min_swap", calib_bands=2
    )
    assert primed.from_cache is False, f"seed={seed}"
    assert warm.from_cache is True, (
        f"seed={seed}: in-band drift must not miss under banding"
    )
    assert warm.circuit.data == primed.circuit.data, f"seed={seed}"
    for name in FIELDS:
        assert getattr(warm, name) == getattr(primed, name), (
            f"seed={seed}: banded warm field {name!r} drifted"
        )
    assert warm.route_stats == primed.route_stats, f"seed={seed}"
    assert warm.eval_stats == primed.eval_stats, f"seed={seed}"
    assert warm.sim_stats == primed.sim_stats, f"seed={seed}"
    # and the decision gate: a fresh compile of the drifted snapshot
    # produces the same instruction stream the banded hit served
    fresh = caqr_compile(circuit, backend=drifted, mode="min_swap")
    assert warm.circuit.data == fresh.circuit.data, (
        f"seed={seed}: banding changed a compile decision"
    )
    # exact digests miss on the same drift
    exact = CompileService()
    exact.compile(circuit, backend=day_zero, mode="min_swap", calib_bands=0)
    exact_report = exact.compile(
        circuit, backend=drifted, mode="min_swap", calib_bands=0
    )
    assert exact_report.from_cache is False, f"seed={seed}"


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(CACHE_SAMPLES, CACHE_SAMPLES + 20))
def test_random_circuit_roundtrip_extended(seed):
    """Nightly-only extension of the sample pool past the fast split."""
    _assert_warm_equals_cold(_sample_circuit(seed), f"seed={seed}")


# -- the networked service must be indistinguishable from the local one -------


def _assert_reports_match(remote, cold, context):
    assert remote.circuit.num_qubits == cold.circuit.num_qubits, context
    assert remote.circuit.num_clbits == cold.circuit.num_clbits, context
    assert remote.circuit.data == cold.circuit.data, (
        f"{context}: instruction stream drifted over the wire"
    )
    for name in FIELDS:
        assert getattr(remote, name) == getattr(cold, name), (
            f"{context}: field {name!r} drifted over the wire"
        )
    for field, has_values in STATS_FIELDS:
        _assert_stats_field(remote, cold, field, has_values, context)


@pytest.mark.parametrize("seed", range(0, CACHE_SAMPLES, 5))
def test_remote_equals_local(seed):
    """Every report field survives the wire protocol bit-for-bit."""
    from repro.service import RemoteCompileService, start_server_thread

    circuit = _sample_circuit(seed)
    mode = "max_reuse" if seed % 2 else "min_depth"
    handle = start_server_thread(service=CompileService())
    try:
        with RemoteCompileService(handle.url, timeout=120) as client:
            remote = client.compile(circuit, mode=mode)
            warm = client.compile(circuit, mode=mode)
        cold = caqr_compile(circuit, mode=mode)
        assert remote.from_cache is False, f"seed={seed}"
        assert warm.from_cache is True, f"seed={seed}"
        _assert_reports_match(remote, cold, f"seed={seed} mode={mode} (miss)")
        _assert_reports_match(warm, cold, f"seed={seed} mode={mode} (hit)")
    finally:
        handle.stop()


def test_remote_equals_local_with_backend():
    """Hardware-mapped reports (router stats attached) cross the wire too."""
    from repro.service import RemoteCompileService, start_server_thread

    circuit = bv_circuit(6)
    backend = ibm_mumbai()
    handle = start_server_thread(service=CompileService())
    try:
        with RemoteCompileService(handle.url, timeout=120) as client:
            remote = client.compile(circuit, backend=backend, mode="min_swap")
        cold = caqr_compile(circuit, backend=backend, mode="min_swap")
        _assert_reports_match(remote, cold, "bv6 min_swap over the wire")
    finally:
        handle.stop()


def test_two_clients_one_cold_compile():
    """Two clients hammering one server pay for exactly one compile per
    fingerprint — the cross-process dedup contract, asserted via /v1/stats."""
    import threading

    from repro.service import RemoteCompileService, start_server_thread
    from repro.service.service import CompileRequest

    handle = start_server_thread(service=CompileService())
    requests = [CompileRequest(target=_sample_circuit(seed)) for seed in range(3)]
    try:
        barrier = threading.Barrier(2)
        results = {}

        def hammer(name):
            client = RemoteCompileService(handle.url, timeout=120)
            barrier.wait(30)
            results[name] = [
                client.compile_classified(request) for request in requests
            ]
            client.close()

        threads = [
            threading.Thread(target=hammer, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        observer = RemoteCompileService(handle.url, timeout=30)
        counters = observer.stats()["stats"]["counters"]
        observer.close()
        assert counters["misses"] == len(requests), (
            "each fingerprint must be compiled exactly once across clients"
        )
        assert counters["requests"] >= 2 * len(requests)
        # both clients saw identical reports, whoever paid for them
        for (report_a, fp_a, _), (report_b, fp_b, _) in zip(
            results["a"], results["b"]
        ):
            assert fp_a == fp_b
            assert report_a.circuit.data == report_b.circuit.data
            assert report_a.metrics == report_b.metrics
    finally:
        handle.stop()
