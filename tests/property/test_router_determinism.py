"""Determinism harness for the vectorised, parallel routing stack.

The PR that introduced numpy scoring kernels, the incremental SR
scheduler, the bitset lookahead kernel, and the parallel trial engines
promised one thing above all: **no output circuit changes**.  This
harness pins that promise on random circuits:

* ``SRCaQR.run`` serial vs. process-pool parallel — identical swap
  count, reuse count, and emitted circuit;
* ``sabre_layout`` serial vs. parallel — identical layout;
* the incremental SR scheduler vs. its from-scratch reference twin;
* the bitset reuse-potential lookahead vs. the networkx reference
  kernel (``CAQR_LOOKAHEAD_KERNEL=nx``).

``CAQR_ROUTE_SAMPLES`` (default 25) scales the random-circuit pool for
nightly runs.
"""

import os

import pytest

from repro.circuit.random import random_circuit
from repro.core.sr_caqr import SRCaQR
from repro.exceptions import ReuseError
from repro.hardware import generic_backend, grid, ibm_mumbai, line
from repro.transpiler.sabre import sabre_layout

ROUTE_SAMPLES = int(os.environ.get("CAQR_ROUTE_SAMPLES", "25"))


def _sample_circuit(seed: int):
    num_qubits = 3 + seed % 5
    num_gates = 8 + (seed * 5) % 14
    return random_circuit(
        num_qubits,
        num_gates=num_gates,
        seed=seed,
        two_qubit_fraction=0.3 + 0.3 * ((seed // 3) % 2),
        measure=seed % 3 != 0,
    )


def _backend(seed: int):
    return [
        ibm_mumbai(),
        generic_backend(grid(4, 4), seed=3),
        generic_backend(line(9), seed=9),
    ][seed % 3]


def _result_signature(result):
    return (
        result.swap_count,
        result.reuse_count,
        result.qubits_used,
        result.duration_dt,
        result.circuit.data,
    )


@pytest.mark.parametrize("seed", range(ROUTE_SAMPLES))
def test_sr_run_serial_parallel_identical(seed):
    circuit = _sample_circuit(seed)
    backend = _backend(seed)
    try:
        serial = SRCaQR(backend, parallel=False).run(
            circuit, trials=2, qs_assist=seed % 2 == 0
        )
    except ReuseError:
        with pytest.raises(ReuseError):
            SRCaQR(backend, parallel=True, max_workers=2).run(
                circuit, trials=2, qs_assist=seed % 2 == 0
            )
        return
    parallel = SRCaQR(backend, parallel=True, max_workers=2).run(
        circuit, trials=2, qs_assist=seed % 2 == 0
    )
    assert _result_signature(serial) == _result_signature(parallel), seed


@pytest.mark.parametrize("seed", range(ROUTE_SAMPLES))
def test_sabre_layout_serial_parallel_identical(seed):
    circuit = _sample_circuit(seed)
    backend = _backend(seed + 1)
    if circuit.num_qubits > backend.coupling.num_qubits:
        pytest.skip("circuit wider than device")
    serial = sabre_layout(
        circuit, backend.coupling, seed=seed, trials=3, parallel=False
    )
    parallel = sabre_layout(
        circuit, backend.coupling, seed=seed, trials=3, parallel=True
    )
    assert serial.as_dict() == parallel.as_dict(), seed


@pytest.mark.parametrize("seed", range(ROUTE_SAMPLES))
def test_sr_incremental_matches_reference(seed):
    circuit = _sample_circuit(seed)
    backend = _backend(seed)
    engines = [
        SRCaQR(backend, incremental=True, parallel=False),
        SRCaQR(backend, incremental=False, parallel=False),
    ]
    outcomes = []
    for engine in engines:
        try:
            outcomes.append(
                _result_signature(engine.run(circuit, trials=2, qs_assist=False))
            )
        except ReuseError as error:
            outcomes.append(("ReuseError", str(error)))
    assert outcomes[0] == outcomes[1], seed


@pytest.mark.parametrize("seed", range(0, ROUTE_SAMPLES, 2))
def test_lookahead_kernels_identical(seed, monkeypatch):
    """The bitset kernel and the networkx reference kernel must agree on
    every potential, hence on the full QS-assisted SR compilation."""
    circuit = _sample_circuit(seed)
    backend = _backend(seed)

    def _compile():
        return SRCaQR(backend, parallel=False).run(
            circuit, trials=1, qs_assist=True
        )

    monkeypatch.setenv("CAQR_LOOKAHEAD_KERNEL", "bitset")
    try:
        fast = _result_signature(_compile())
    except ReuseError:
        monkeypatch.setenv("CAQR_LOOKAHEAD_KERNEL", "nx")
        with pytest.raises(ReuseError):
            _compile()
        return
    monkeypatch.setenv("CAQR_LOOKAHEAD_KERNEL", "nx")
    reference = _result_signature(_compile())
    assert fast == reference, seed
