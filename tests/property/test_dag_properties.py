"""Property-based tests over the DAG layer."""

from hypothesis import given, settings

from repro.dag import (
    DAGCircuit,
    critical_path_length,
    dag_depth,
    descendants_bitsets,
    qubit_dependency_matrix,
    slack,
)
from tests.property.strategies import circuits


class TestDAGInvariants:
    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_respects_edges(self, circuit):
        dag = DAGCircuit.from_circuit(circuit)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node in dag.nodes:
            for successor in dag.successors(node):
                assert position[node] < position[successor]

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_dag_depth_equals_circuit_depth(self, circuit):
        dag = DAGCircuit.from_circuit(circuit)
        assert dag_depth(dag) == circuit.depth()

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_counts(self, circuit):
        rebuilt = DAGCircuit.from_circuit(circuit).to_circuit()
        assert rebuilt.count_ops() == circuit.count_ops()
        assert rebuilt.depth() == circuit.depth()

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_slack_nonnegative_and_zero_somewhere(self, circuit):
        dag = DAGCircuit.from_circuit(circuit)
        if not len(dag):
            return
        slacks = slack(dag)
        assert all(value >= 0 for value in slacks.values())
        if critical_path_length(dag) > 0:
            assert 0 in slacks.values()

    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_reachability_transitive(self, circuit):
        dag = DAGCircuit.from_circuit(circuit)
        masks = descendants_bitsets(dag)
        for node in dag.nodes:
            for successor in dag.successors(node):
                # descendants of successor are descendants of node
                assert masks[successor] & ~masks[node] == 0 or (
                    masks[successor] | (1 << successor)
                ) & ~masks[node] == 0

    @given(circuits(min_qubits=2))
    @settings(max_examples=30, deadline=None)
    def test_dependency_matrix_antisymmetric_without_shared_gates(self, circuit):
        """If a->b and b->a both hold, the qubits must share a gate or a
        connecting path both ways (possible); but a qubit pair with no
        gates at all must be independent."""
        dag = DAGCircuit.from_circuit(circuit)
        matrix = qubit_dependency_matrix(dag)
        used = set()
        for instruction in circuit.data:
            used.update(instruction.qubits)
        for a in range(circuit.num_qubits):
            if a not in used:
                for b in used:
                    assert not matrix.get((a, b), False)
                    assert not matrix.get((b, a), False)
