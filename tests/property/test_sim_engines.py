"""Differential harness for the simulation engines.

Mirrors :mod:`tests.property.test_equivalence_diff` for the sim layer:
seeded random *dynamic* circuits (mid-circuit measurement, reset, and
classically conditioned gates — the operations qubit reuse emits) are run
through every engine, and

* noiseless seeded counts must match the reference loop **bit-for-bit**
  for the branch-tree and batched engines, and
* noisy batched runs must stay within TVD < 0.02 of the reference at
  8192 shots (nightly, ``-m slow``).

Failures print the generator seed so a divergence replays in isolation.
"""

import os
import random

import pytest

from repro.circuit import QuantumCircuit
from repro.sim import NoiseModel, run_counts
from repro.sim.metrics import normalize_counts

ENGINE_SAMPLES = int(os.environ.get("CAQR_ENGINE_SAMPLES", "25"))

_ONE_QUBIT = ["h", "x", "y", "z", "s", "t", "sx"]
_ROTATIONS = ["rx", "ry", "rz"]


def dynamic_random_circuit(seed: int) -> QuantumCircuit:
    """Random dynamic circuit: 2-4 qubits, mid-circuit measure/reset and
    conditioned gates, measures/resets always unconditioned (so every
    engine's exactness contract applies)."""
    rng = random.Random(seed)
    num_qubits = rng.randint(2, 4)
    num_clbits = rng.randint(2, 4)
    circuit = QuantumCircuit(num_qubits, num_clbits)
    measured = []
    for _ in range(rng.randint(8, 18)):
        roll = rng.random()
        qubit = rng.randrange(num_qubits)
        if roll < 0.40:
            getattr(circuit, rng.choice(_ONE_QUBIT))(qubit)
        elif roll < 0.55:
            getattr(circuit, rng.choice(_ROTATIONS))(
                rng.uniform(0, 3.1), qubit
            )
        elif roll < 0.70 and num_qubits > 1:
            other = rng.choice([q for q in range(num_qubits) if q != qubit])
            rng.choice([circuit.cx, circuit.cz])(qubit, other)
        elif roll < 0.80:
            circuit.measure(qubit, rng.randrange(num_clbits))
            measured.append(qubit)
        elif roll < 0.88:
            circuit.reset(qubit)
        elif measured:
            clbit = rng.randrange(num_clbits)
            circuit.x(qubit).c_if(clbit, rng.randint(0, 1))
    # every circuit ends measured so the counts are meaningful
    for qubit in range(min(num_qubits, num_clbits)):
        circuit.measure(qubit, qubit)
    return circuit


@pytest.mark.parametrize("seed", range(ENGINE_SAMPLES))
def test_noiseless_engines_bit_identical(seed):
    circuit = dynamic_random_circuit(seed)
    reference = run_counts(circuit, shots=400, seed=seed, engine="reference")
    for engine in ("branchtree", "batch"):
        counts = run_counts(circuit, shots=400, seed=seed, engine=engine)
        assert counts == reference, (
            f"engine {engine} diverged from reference (seed={seed})"
        )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [2, 5, 10, 19])
def test_noisy_batch_tvd(seed):
    """Nightly: batched noisy sampling vs. the reference loop at 8192
    shots.  0.02 comfortably exceeds the two-sample noise floor for these
    few-outcome circuits."""
    circuit = dynamic_random_circuit(seed)
    noise = NoiseModel.uniform(
        one_qubit_error=0.005, two_qubit_error=0.02, readout=0.02
    )
    reference = run_counts(
        circuit, shots=8192, seed=seed, noise=noise, engine="reference"
    )
    batched = run_counts(
        circuit, shots=8192, seed=seed, noise=noise, engine="batch"
    )
    pa, pb = normalize_counts(reference), normalize_counts(batched)
    tvd = 0.5 * sum(
        abs(pa.get(k, 0.0) - pb.get(k, 0.0)) for k in set(pa) | set(pb)
    )
    assert tvd < 0.02, f"noisy TVD {tvd:.4f} at seed={seed}"


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(ENGINE_SAMPLES, ENGINE_SAMPLES + 15))
def test_noiseless_engines_bit_identical_extended(seed):
    """Nightly-only extension of the seed pool past the fast split."""
    circuit = dynamic_random_circuit(seed)
    reference = run_counts(circuit, shots=400, seed=seed, engine="reference")
    for engine in ("branchtree", "batch"):
        counts = run_counts(circuit, shots=400, seed=seed, engine=engine)
        assert counts == reference, (
            f"engine {engine} diverged from reference (seed={seed})"
        )
