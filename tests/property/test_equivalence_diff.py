"""Differential harness: incremental engine vs. the from-scratch reference.

Every CaQR transform the incremental evaluation engine performs must be
*indistinguishable* from the brute-force path it replaces:

* the greedy sweep picks the exact same reuse-pair sequence,
* every intermediate circuit is instruction-identical,
* the final circuit's output distribution matches the original circuit's
  (the transform-correctness half, via :mod:`repro.sim.verify`).

The harness drives ``CAQR_DIFF_SAMPLES`` random circuits (default 200,
override via the environment for nightly runs) through both engines and
fails loudly on the first divergence, printing the offending seed so the
case can be replayed in isolation.
"""

import os

import pytest

from repro.circuit.random import random_circuit
from repro.core.qs_caqr import QSCaQR
from repro.core.qs_commuting import QSCaQRCommuting
from repro.sim.verify import distributions_tvd
from repro.workloads.bv import bv_circuit

DIFF_SAMPLES = int(os.environ.get("CAQR_DIFF_SAMPLES", "200"))

# simulating every sample is too slow for the fast split; every SIM_STRIDE-th
# final circuit also gets the distribution check against the original
SIM_STRIDE = 10


def _sample_circuit(seed: int):
    """Small but structurally diverse circuits: 3-6 qubits, mixed gate
    pools, with and without terminal measurements."""
    num_qubits = 3 + seed % 4
    num_gates = 6 + (seed * 7) % 12
    return random_circuit(
        num_qubits,
        num_gates=num_gates,
        seed=seed,
        two_qubit_fraction=0.35 + 0.3 * ((seed // 4) % 2),
        measure=seed % 3 != 0,
    )


def _assert_engines_agree(circuit, seed, objective="depth", check_sim=False):
    incremental = QSCaQR(objective=objective)
    reference = QSCaQR(objective=objective, incremental=False)
    fast = incremental.sweep(circuit)
    slow = reference.sweep(circuit)
    context = f"seed={seed} objective={objective}"
    assert len(fast) == len(slow), f"sweep length diverged ({context})"
    for step, (a, b) in enumerate(zip(fast, slow)):
        assert a.pairs == b.pairs, (
            f"pair sequence diverged at step {step} ({context}): "
            f"{a.pairs} != {b.pairs}"
        )
        assert a.circuit.data == b.circuit.data, (
            f"materialised circuit diverged at step {step} ({context})"
        )
        assert (a.qubits, a.depth) == (b.qubits, b.depth), context
    # unmeasured circuits have nothing to sample; reuse still appends its
    # own clbits, so compare only when the original defines a distribution
    if check_sim and fast[-1].pairs and circuit.num_clbits > 0:
        tvd = distributions_tvd(
            circuit, fast[-1].circuit, shots=400, seed=17
        )
        assert tvd < 0.25, (
            f"maximal-reuse circuit distribution drifted ({context}): "
            f"tvd={tvd:.3f}"
        )


@pytest.mark.parametrize("seed", range(DIFF_SAMPLES))
def test_random_circuit_differential(seed):
    circuit = _sample_circuit(seed)
    _assert_engines_agree(
        circuit, seed, check_sim=seed % SIM_STRIDE == 0
    )


@pytest.mark.parametrize("seed", range(0, DIFF_SAMPLES, 5))
def test_random_circuit_differential_duration(seed):
    _assert_engines_agree(_sample_circuit(seed), seed, objective="duration")


def test_bv_differential_both_objectives():
    circuit = bv_circuit(8)
    for objective in ("depth", "duration"):
        _assert_engines_agree(circuit, seed="bv8", objective=objective)


@pytest.mark.slow
def test_large_bv_differential():
    """Nightly-scale instance: a full 16-qubit Fig. 13-style sweep
    through both engines, both objectives."""
    circuit = bv_circuit(16)
    _assert_engines_agree(circuit, seed="bv16")
    _assert_engines_agree(circuit, seed="bv16", objective="duration")


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(DIFF_SAMPLES, DIFF_SAMPLES + 40))
def test_random_circuit_differential_extended(seed):
    """Nightly-only extension of the sample pool past the fast split."""
    _assert_engines_agree(_sample_circuit(seed), seed, check_sim=seed % SIM_STRIDE == 0)


def test_reduce_to_differential():
    for seed in range(0, 40, 3):
        circuit = _sample_circuit(seed)
        limit = max(2, circuit.num_qubits - 2)
        fast = QSCaQR().reduce_to(circuit, limit)
        slow = QSCaQR(incremental=False).reduce_to(circuit, limit)
        assert fast.feasible == slow.feasible, seed
        assert fast.pairs == slow.pairs, seed
        assert fast.circuit.data == slow.circuit.data, seed


def test_forced_parallel_path_matches_serial():
    """Drop the fan-out thresholds to zero so the process pool actually
    runs, and pin its pair choices against the serial incremental path."""
    circuit = bv_circuit(10)
    parallel = QSCaQR(parallel=True, parallel_threshold=0, max_workers=2)
    serial = QSCaQR(parallel=False)
    fast = parallel.sweep(circuit)
    slow = serial.sweep(circuit)
    assert [p.pairs for p in fast] == [p.pairs for p in slow]
    assert all(a.circuit.data == b.circuit.data for a, b in zip(fast, slow))
    assert parallel.stats.counters.get("parallel_batches", 0) > 0
    assert serial.stats.counters.get("parallel_batches", 0) == 0


def test_commuting_parallel_matches_serial():
    """The commuting driver's pooled candidate scoring picks the same
    extensions as its serial loop."""
    import networkx as nx

    graph = nx.random_regular_graph(3, 14, seed=7)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    parallel = QSCaQRCommuting(
        graph, parallel=True, parallel_threshold=0, max_workers=2
    )
    serial = QSCaQRCommuting(graph, parallel=False)
    with parallel, serial:
        fast = parallel.sweep()
        slow = serial.sweep()
    assert [p.pairs for p in fast] == [p.pairs for p in slow]
    assert [p.qubits for p in fast] == [p.qubits for p in slow]
    assert all(a.circuit.data == b.circuit.data for a, b in zip(fast, slow))
    assert parallel.stats.counters.get("parallel_batches", 0) > 0
