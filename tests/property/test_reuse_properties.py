"""Property-based tests for the CaQR reuse core."""

from hypothesis import assume, given, settings

from repro.core import (
    QSCaQR,
    ReuseAnalysis,
    apply_reuse_pair,
    lifetime_minimum_qubits,
    lifetime_schedule,
    minimum_qubits_by_coloring,
    schedule_commuting,
)
from repro.dag import DAGCircuit
from tests.property.strategies import circuits, problem_graphs


class TestConditionsProperties:
    @given(circuits(min_qubits=2, terminal_measures=True))
    @settings(max_examples=40, deadline=None)
    def test_valid_pairs_never_share_gates(self, circuit):
        analysis = ReuseAnalysis(circuit)
        interaction = circuit.interaction_graph()
        for pair in analysis.valid_pairs():
            assert not interaction.has_edge(pair.source, pair.target)

    @given(circuits(min_qubits=2, terminal_measures=True))
    @settings(max_examples=30, deadline=None)
    def test_applying_valid_pair_never_creates_cycle(self, circuit):
        analysis = ReuseAnalysis(circuit)
        pairs = analysis.valid_pairs()
        assume(pairs)
        for pair in pairs[:3]:
            result = apply_reuse_pair(circuit, pair, validate=False)
            assert not DAGCircuit.from_circuit(result.circuit).has_cycle()

    @given(circuits(min_qubits=2, terminal_measures=True))
    @settings(max_examples=30, deadline=None)
    def test_transform_shrinks_width_and_keeps_gates(self, circuit):
        pairs = ReuseAnalysis(circuit).valid_pairs()
        assume(pairs)
        pair = pairs[0]
        result = apply_reuse_pair(circuit, pair)
        assert result.circuit.num_qubits == circuit.num_qubits - 1
        before = circuit.count_ops()
        after = result.circuit.count_ops()
        for name in before:
            if name not in ("measure", "x"):
                assert after[name] == before[name]
        # exactly one conditional X (or one more measure) was inserted
        assert after["x"] >= before.get("x", 0)


class TestQSCaQRProperties:
    @given(circuits(min_qubits=2, max_qubits=4, max_gates=12, terminal_measures=True))
    @settings(max_examples=20, deadline=None)
    def test_sweep_qubit_counts_strictly_decrease(self, circuit):
        points = QSCaQR().sweep(circuit)
        qubit_counts = [p.qubits for p in points]
        assert qubit_counts[0] == circuit.num_qubits
        assert all(b == a - 1 for a, b in zip(qubit_counts, qubit_counts[1:]))

    @given(circuits(min_qubits=2, max_qubits=4, max_gates=12, terminal_measures=True))
    @settings(max_examples=20, deadline=None)
    def test_reduce_to_feasible_hits_budget_exactly(self, circuit):
        floor = QSCaQR().minimum_qubits(circuit)
        result = QSCaQR().reduce_to(circuit, floor)
        assert result.feasible
        assert result.qubits == floor


class TestCommutingProperties:
    @given(problem_graphs())
    @settings(max_examples=30, deadline=None)
    def test_coloring_bound_at_most_width(self, graph):
        bound = minimum_qubits_by_coloring(graph)
        assert 1 <= bound <= graph.number_of_nodes()

    @given(problem_graphs())
    @settings(max_examples=30, deadline=None)
    def test_schedule_covers_all_gates_exactly_once(self, graph):
        schedule = schedule_commuting(graph, [])
        scheduled = [gate for layer in schedule.layers for gate in layer]
        assert sorted(scheduled) == sorted(
            tuple(sorted(edge)) for edge in graph.edges
        )

    @given(problem_graphs())
    @settings(max_examples=30, deadline=None)
    def test_layers_are_matchings(self, graph):
        schedule = schedule_commuting(graph, [])
        for layer in schedule.layers:
            qubits = [q for gate in layer for q in gate]
            assert len(qubits) == len(set(qubits))


class TestLifetimeProperties:
    @given(problem_graphs())
    @settings(max_examples=30, deadline=None)
    def test_floor_schedule_feasible_and_consistent(self, graph):
        floor = lifetime_minimum_qubits(graph)
        pairs, schedule = lifetime_schedule(graph, floor)
        n = graph.number_of_nodes()
        assert len(pairs) >= n - floor
        scheduled = [gate for layer in schedule.layers for gate in layer]
        assert sorted(scheduled) == sorted(
            tuple(sorted(edge)) for edge in graph.edges
        )

    @given(problem_graphs())
    @settings(max_examples=30, deadline=None)
    def test_pairs_have_distinct_roles(self, graph):
        floor = lifetime_minimum_qubits(graph)
        pairs, _ = lifetime_schedule(graph, floor)
        sources = [pair.source for pair in pairs]
        targets = [pair.target for pair in pairs]
        assert len(set(sources)) == len(sources)
        assert len(set(targets)) == len(targets)

    @given(problem_graphs())
    @settings(max_examples=30, deadline=None)
    def test_measure_fires_before_target_gate_layers(self, graph):
        floor = lifetime_minimum_qubits(graph)
        pairs, schedule = lifetime_schedule(graph, floor)
        for pair in pairs:
            fire = schedule.measure_after_layer[pair]
            for index, layer in enumerate(schedule.layers):
                if any(pair.target in gate for gate in layer):
                    assert index > fire
