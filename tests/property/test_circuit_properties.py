"""Property-based tests over the circuit IR and QASM roundtrip."""

import pytest
from hypothesis import given, settings

from repro.circuit import parse_qasm, to_qasm
from tests.property.strategies import circuits


class TestCircuitInvariants:
    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_depth_bounded_by_size(self, circuit):
        assert 0 <= circuit.depth() <= circuit.size()

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_count_ops_sums_to_length(self, circuit):
        assert sum(circuit.count_ops().values()) == len(circuit)

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_two_qubit_count_bounded(self, circuit):
        assert circuit.two_qubit_gate_count() <= circuit.size()

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, circuit):
        assert circuit.copy() == circuit

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_compacted_preserves_gate_sequence(self, circuit):
        compact = circuit.compacted()
        assert [i.name for i in compact.data] == [i.name for i in circuit.data]
        assert compact.num_qubits == circuit.num_used_qubits()
        assert compact.depth() == circuit.depth()

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_interaction_graph_edges_bounded(self, circuit):
        graph = circuit.interaction_graph()
        assert graph.number_of_edges() <= circuit.two_qubit_gate_count()

    @given(circuits(terminal_measures=True))
    @settings(max_examples=40, deadline=None)
    def test_duration_at_least_depth_scaled(self, circuit):
        # every non-virtual instruction takes positive time
        assert circuit.duration_dt() >= 0
        if circuit.count_ops().get("measure"):
            assert circuit.duration_dt() >= 15908


class TestQasmRoundtrip:
    @given(circuits(terminal_measures=True))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_structure(self, circuit):
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert [i.name for i in parsed.data] == [i.name for i in circuit.data]
        assert [i.qubits for i in parsed.data] == [i.qubits for i in circuit.data]

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_params(self, circuit):
        parsed = parse_qasm(to_qasm(circuit))
        for a, b in zip(parsed.data, circuit.data):
            assert a.params == pytest.approx(b.params)
