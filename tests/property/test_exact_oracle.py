"""Differential harness: greedy engines vs. the exact reuse oracle.

:class:`~repro.core.exact.ExactReuse` solves qubit reuse to proven
optimality on small circuits, which turns it into ground truth for every
greedy engine: QS-CaQR (either evaluation engine) must never *beat* the
oracle, the oracle must never *lose* to any greedy engine, and its
transformed circuit must stay observationally equivalent to the input.

The pool mirrors the cache-roundtrip harness (mixed widths, gate
densities, with and without terminal measurements) but reaches up to 8
qubits — the oracle's practical sweet spot.  ``CAQR_ORACLE_SAMPLES``
scales the pool (default 200; the nightly ``oracle-diff`` CI job runs
500), and ``CAQR_ORACLE_GAP_JSON`` makes the gap-distribution test write
its summary as a JSON artifact for trend tracking.
"""

import json
import os

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.core.exact import ExactReuse, exact_minimum_qubits
from repro.core.qs_caqr import QSCaQR
from repro.core.sr_caqr import SRCaQR
from repro.hardware import ibm_mumbai
from repro.sim.verify import assert_equivalent
from repro.workloads import bv_circuit, ghz_measured

ORACLE_SAMPLES = int(os.environ.get("CAQR_ORACLE_SAMPLES", "200"))


def _sample_circuit(seed: int) -> QuantumCircuit:
    """3-8 qubits, mixed densities, with and without measurements."""
    num_qubits = 3 + seed % 6
    num_gates = 6 + (seed * 7) % 14
    return random_circuit(
        num_qubits,
        num_gates=num_gates,
        seed=seed,
        two_qubit_fraction=0.35 + 0.3 * ((seed // 4) % 2),
        measure=seed % 3 != 0,
    )


def _reuse_chain(length: int) -> QuantumCircuit:
    """A CX ladder: qubit i feeds i+1, then everyone is measured.

    Each qubit is dead as soon as its successor has consumed it, so two
    wires suffice regardless of length — a hand-checkable optimum.
    """
    circuit = QuantumCircuit(length, length)
    for i in range(length - 1):
        circuit.cx(i, i + 1)
    for i in range(length):
        circuit.measure(i, i)
    return circuit


# -- the oracle vs. QS-CaQR, across the whole pool -----------------------------


@pytest.mark.parametrize("seed", range(ORACLE_SAMPLES))
def test_exact_never_worse_than_qs(seed):
    """The oracle proves optimality within budget and never loses to
    the greedy sweep — the acceptance bar of the exact tier."""
    circuit = _sample_circuit(seed)
    result = ExactReuse().run(circuit)
    assert result.optimal, (
        f"seed={seed}: oracle hit its budget on a {circuit.num_qubits}-qubit "
        f"circuit ({result.nodes_expanded} nodes)"
    )
    greedy = QSCaQR().minimum_qubits(circuit)
    assert result.qubits <= greedy, (
        f"seed={seed}: oracle used {result.qubits} qubits, greedy "
        f"reached {greedy} — the 'exact' solver is not exact"
    )
    # the emitted plan must actually materialize at the claimed width
    assert result.circuit.num_qubits == result.qubits, f"seed={seed}"


@pytest.mark.parametrize("seed", range(0, ORACLE_SAMPLES, 2))
def test_qs_engines_never_beat_the_oracle(seed):
    """Both QS evaluation engines are bounded below by the oracle — a
    greedy result under the proven optimum would mean an unsound
    transform (or a broken oracle)."""
    circuit = _sample_circuit(seed)
    optimal = exact_minimum_qubits(circuit)
    for incremental in (True, False):
        greedy = QSCaQR(incremental=incremental, parallel=False).minimum_qubits(
            circuit
        )
        assert greedy >= optimal, (
            f"seed={seed} incremental={incremental}: greedy claims "
            f"{greedy} < proven optimum {optimal}"
        )


@pytest.mark.parametrize("seed", range(0, ORACLE_SAMPLES, 10))
def test_exact_never_worse_than_sr(seed):
    """SR-CaQR's routed output never goes below the logical optimum."""
    circuit = _sample_circuit(seed)
    optimal = exact_minimum_qubits(circuit)
    routed = SRCaQR(ibm_mumbai(), parallel=False).run(circuit)
    assert routed.qubits_used >= optimal, (
        f"seed={seed}: SR routed onto {routed.qubits_used} qubits, "
        f"below the proven optimum {optimal}"
    )


@pytest.mark.parametrize(
    "seed", [s for s in range(0, ORACLE_SAMPLES, 5) if s % 3 != 0]
)
def test_exact_output_equivalent(seed):
    """The oracle's transformed circuit is observationally equivalent to
    the input (measured samples only — sampling needs clbits)."""
    circuit = _sample_circuit(seed)
    result = ExactReuse().run(circuit)
    assert_equivalent(circuit, result.circuit)


# -- gap distribution ----------------------------------------------------------


def test_gap_distribution():
    """Greedy-vs-optimal gap across the pool: never negative, summarized
    (and optionally exported) for trend tracking."""
    gaps = {}
    for seed in range(0, ORACLE_SAMPLES, 5):
        circuit = _sample_circuit(seed)
        result = ExactReuse().run(circuit)
        assert result.optimal, f"seed={seed}"
        greedy = QSCaQR().minimum_qubits(circuit)
        gap = greedy - result.qubits
        assert gap >= 0, f"seed={seed}: negative gap {gap}"
        gaps[seed] = gap
    values = sorted(gaps.values())
    summary = {
        "samples": len(values),
        "max_gap": values[-1],
        "mean_gap": sum(values) / len(values),
        "nonzero": sum(1 for g in values if g),
        "by_gap": {
            str(g): values.count(g) for g in sorted(set(values))
        },
    }
    artifact = os.environ.get("CAQR_ORACLE_GAP_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    # the greedy heuristic is good: gaps stay small on this pool
    assert summary["max_gap"] <= 2, summary


# -- pinned hand-computable fixtures -------------------------------------------


@pytest.mark.parametrize(
    "circuit,optimal",
    [
        pytest.param(bv_circuit(4), 2, id="bv4"),
        pytest.param(ghz_measured(5), 2, id="ghz5"),
        pytest.param(_reuse_chain(5), 2, id="chain5"),
    ],
)
def test_pinned_optima(circuit, optimal):
    result = ExactReuse().run(circuit)
    assert result.optimal
    assert result.qubits == optimal
    assert result.circuit.num_qubits == optimal
    assert_equivalent(circuit, result.circuit)


def test_anytime_budget_returns_best_so_far():
    """A starved node budget still yields a sound (if unproven) plan."""
    circuit = _reuse_chain(8)
    result = ExactReuse(max_nodes=2).run(circuit)
    assert result.optimal is False
    assert 2 < result.qubits <= circuit.num_qubits
    # the fallback plan must still materialize soundly
    assert result.circuit.num_qubits == result.qubits
    assert_equivalent(circuit, result.circuit)


def test_oracle_plan_is_consumable_by_the_transform_layer():
    """The oracle emits the same ReusePair plan the greedy engines use —
    replaying it through apply_reuse_chain reproduces the circuit."""
    from repro.core.transform import apply_reuse_chain

    circuit = bv_circuit(5)
    result = ExactReuse().run(circuit)
    replayed = apply_reuse_chain(circuit, result.pairs)
    assert replayed.num_qubits == result.qubits
    assert replayed.data == result.circuit.data
