"""Tests for Bernstein-Vazirani circuits."""

import pytest

from repro.exceptions import WorkloadError
from repro.sim import run_counts
from repro.workloads import bv_circuit, bv_expected_bitstring


class TestBVConstruction:
    def test_width(self):
        circuit = bv_circuit(5)
        assert circuit.num_qubits == 5
        assert circuit.num_clbits == 4

    def test_cx_count_matches_secret_weight(self):
        circuit = bv_circuit(6, secret=[1, 0, 1, 1, 0])
        assert circuit.count_ops()["cx"] == 3

    def test_star_interaction(self):
        graph = bv_circuit(5).interaction_graph()
        assert graph.degree(4) == 4

    def test_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            bv_circuit(1)

    def test_bad_secret_rejected(self):
        with pytest.raises(WorkloadError):
            bv_circuit(3, secret=[1])
        with pytest.raises(WorkloadError):
            bv_circuit(3, secret=[1, 2])


class TestBVSemantics:
    @pytest.mark.parametrize("secret", [[1, 1, 1], [0, 1, 0], [1, 0, 1]])
    def test_recovers_secret(self, secret):
        circuit = bv_circuit(4, secret=secret)
        counts = run_counts(circuit, shots=200, seed=1)
        expected = bv_expected_bitstring(4, secret)
        assert counts == {expected: 200}

    def test_default_secret_all_ones(self):
        counts = run_counts(bv_circuit(5), shots=100, seed=2)
        assert counts == {"1111": 100}
