"""Tests for graph generators and QAOA circuit construction."""

import networkx as nx
import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    edge_count_for_density,
    get_benchmark,
    graph_density,
    power_law_graph,
    qaoa_benchmark,
    qaoa_cost_edges,
    qaoa_maxcut_circuit,
    random_graph,
)


class TestGraphGenerators:
    @pytest.mark.parametrize("n,density", [(16, 0.3), (32, 0.3), (20, 0.5)])
    def test_random_graph_density(self, n, density):
        graph = random_graph(n, density, seed=1)
        assert graph.number_of_nodes() == n
        assert graph.number_of_edges() == edge_count_for_density(n, density)

    @pytest.mark.parametrize("n,density", [(16, 0.3), (64, 0.3)])
    def test_power_law_density(self, n, density):
        graph = power_law_graph(n, density, seed=1)
        assert graph.number_of_edges() == edge_count_for_density(n, density)

    def test_power_law_heavier_tail_than_random(self):
        """The defining contrast the paper draws (Section 4.2.2)."""
        n, density = 64, 0.3
        pl = power_law_graph(n, density, seed=5)
        rnd = random_graph(n, density, seed=5)
        pl_max = max(dict(pl.degree()).values())
        rnd_max = max(dict(rnd.degree()).values())
        assert pl_max > rnd_max

    def test_reproducible(self):
        a = random_graph(20, 0.3, seed=9)
        b = random_graph(20, 0.3, seed=9)
        assert set(a.edges) == set(b.edges)

    def test_bad_density_rejected(self):
        with pytest.raises(WorkloadError):
            random_graph(10, 0.0)
        with pytest.raises(WorkloadError):
            random_graph(10, 1.5)


class TestQAOACircuit:
    def _triangle(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (0, 2)])
        return graph

    def test_structure_single_round(self):
        circuit = qaoa_maxcut_circuit(self._triangle())
        ops = circuit.count_ops()
        assert ops["h"] == 3
        assert ops["rzz"] == 3
        assert ops["rx"] == 3
        assert ops["measure"] == 3

    def test_multi_round(self):
        circuit = qaoa_maxcut_circuit(self._triangle(), gammas=[0.1, 0.2], betas=[0.3, 0.4])
        assert circuit.count_ops()["rzz"] == 6

    def test_angle_wiring(self):
        circuit = qaoa_maxcut_circuit(self._triangle(), gammas=[0.5], betas=[0.25])
        rzz = [i for i in circuit.data if i.name == "rzz"][0]
        rx = [i for i in circuit.data if i.name == "rx"][0]
        assert rzz.params[0] == pytest.approx(1.0)
        assert rx.params[0] == pytest.approx(0.5)

    def test_mismatched_angles_rejected(self):
        with pytest.raises(WorkloadError):
            qaoa_maxcut_circuit(self._triangle(), gammas=[0.1], betas=[0.1, 0.2])

    def test_bad_vertex_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(WorkloadError):
            qaoa_maxcut_circuit(graph)

    def test_cost_edges_sorted(self):
        edges = qaoa_cost_edges(self._triangle())
        assert all(a < b for a, b in edges)


class TestRegistry:
    def test_regular_lookup(self):
        assert get_benchmark("bv_10").num_qubits == 10
        assert get_benchmark("xor_5").num_qubits == 5

    def test_qaoa_lookup(self):
        circuit = qaoa_benchmark("qaoa10-0.3")
        assert circuit.num_qubits == 10

    def test_qaoa_density_in_name(self):
        sparse = qaoa_benchmark("qaoa10-0.3")
        dense = qaoa_benchmark("qaoa10-0.5")
        assert dense.count_ops()["rzz"] > sparse.count_ops()["rzz"]

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            get_benchmark("frobnicate_9000")
