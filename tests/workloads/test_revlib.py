"""Tests for the RevLib-style regular benchmarks."""

import pytest

from repro.exceptions import WorkloadError
from repro.sim import run_counts
from repro.workloads import cc_circuit, four_mod5, multiply_13, rd32, system_9, xor5


class TestWidths:
    """Every benchmark must match the paper's published qubit counts."""

    def test_rd32(self):
        assert rd32().num_qubits == 4

    def test_4mod5(self):
        assert four_mod5().num_qubits == 5

    def test_multiply_13(self):
        assert multiply_13().num_qubits == 13

    def test_system_9(self):
        assert system_9().num_qubits == 9

    def test_cc_10(self):
        assert cc_circuit(10).num_qubits == 10

    def test_xor5(self):
        assert xor5().num_qubits == 5


class TestStructure:
    def test_xor5_star_interaction(self):
        graph = xor5().interaction_graph()
        assert graph.degree(4) == 4

    def test_cc_has_mid_circuit_measurement(self):
        assert cc_circuit(10).has_dynamic_operations()

    def test_arithmetic_circuits_use_toffolis(self):
        for circuit in (rd32(), four_mod5(), multiply_13(), system_9()):
            assert circuit.count_ops()["ccx"] >= 1

    def test_cc_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            cc_circuit(2)


class TestDeterministicOutputs:
    """The classical reversible circuits on fixed inputs output one string."""

    @pytest.mark.parametrize("builder", [rd32, four_mod5, multiply_13, system_9, xor5])
    def test_single_outcome(self, builder):
        circuit = builder()
        counts = run_counts(circuit, shots=64, seed=3)
        assert len(counts) == 1

    def test_xor5_parity_value(self):
        # inputs 1,0,1,1 -> parity 1 on the target (clbit 4)
        counts = run_counts(xor5(), shots=32, seed=4)
        key = next(iter(counts))
        assert key[4] == "1"
        assert key[:4] == "1011"
