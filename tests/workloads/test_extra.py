"""Tests for the additional workloads and QASM assets."""

import pytest

from repro.core import QSCaQR, assess_reuse_benefit, sweep_regular
from repro.exceptions import WorkloadError
from repro.sim import run_counts
from repro.workloads import (
    cuccaro_adder,
    deutsch_jozsa,
    ghz_measured,
    hidden_shift,
    load_qasm_benchmark,
    qasm_benchmark_names,
)


class TestDeutschJozsa:
    def test_balanced_gives_mask(self):
        circuit = deutsch_jozsa(5, balanced_mask=[1, 0, 1, 1])
        counts = run_counts(circuit, shots=100, seed=1)
        assert counts == {"1011": 100}

    def test_constant_gives_zeros(self):
        circuit = deutsch_jozsa(4, balanced_mask=[0, 0, 0])
        counts = run_counts(circuit, shots=100, seed=1)
        assert counts == {"000": 100}

    def test_compresses_to_two_qubits(self):
        assert QSCaQR().minimum_qubits(deutsch_jozsa(7)) == 2

    def test_bad_mask(self):
        with pytest.raises(WorkloadError):
            deutsch_jozsa(4, balanced_mask=[1])


class TestCuccaroAdder:
    def test_width(self):
        assert cuccaro_adder(3).num_qubits == 8

    def test_deterministic_sum(self):
        counts = run_counts(cuccaro_adder(2), shots=64, seed=2)
        assert len(counts) == 1

    def test_addition_correct(self):
        """a=11 (3), b=01 (1): sum bits replace b; 3+1=4 -> b=00, carry=1."""
        counts = run_counts(cuccaro_adder(2), shots=16, seed=3)
        key = next(iter(counts))
        # wires: cin(0) b0(1) a0(2) b1(3) a1(4) cout(5)
        b0, b1, cout = key[1], key[3], key[5]
        assert (b0, b1, cout) == ("0", "0", "1")

    def test_uncompute_ladder_blocks_reuse(self):
        """The UMA back-sweep keeps every qubit live to the end: the
        measure-and-reuse style finds nothing (SQUARE's territory)."""
        points = sweep_regular(cuccaro_adder(3))
        report = assess_reuse_benefit(points)
        assert points[-1].qubits == 8
        assert not report.beneficial

    def test_bad_bits(self):
        with pytest.raises(WorkloadError):
            cuccaro_adder(0)


class TestGHZ:
    def test_two_outcomes(self):
        counts = run_counts(ghz_measured(4), shots=2000, seed=4)
        assert set(counts) == {"0000", "1111"}

    def test_ghz_compresses_to_two_wires(self):
        """Deferred measurement lets the GHZ chain fold onto 2 wires."""
        result = QSCaQR().reduce_to(ghz_measured(5), 2)
        assert result.feasible

    def test_reused_ghz_keeps_correlations(self):
        result = QSCaQR().reduce_to(ghz_measured(4), 2)
        counts = run_counts(result.circuit, shots=2000, seed=11)
        assert set(counts) == {"0000", "1111"}
        assert abs(counts["0000"] - 1000) < 150


class TestHiddenShift:
    def test_width_and_determinism(self):
        circuit = hidden_shift(6)
        counts = run_counts(circuit, shots=64, seed=5)
        assert circuit.num_qubits == 6
        assert len(counts) == 1

    def test_matching_interaction_graph(self):
        graph = hidden_shift(6).interaction_graph()
        assert all(degree == 1 for _q, degree in graph.degree())

    def test_reuse_halves_qubits_or_better(self):
        assert QSCaQR().minimum_qubits(hidden_shift(6)) <= 3

    def test_odd_width_rejected(self):
        with pytest.raises(WorkloadError):
            hidden_shift(5)


class TestQasmAssets:
    def test_all_programs_parse(self):
        for name in qasm_benchmark_names():
            circuit = load_qasm_benchmark(name)
            assert circuit.num_qubits >= 1
            assert circuit.name == name

    def test_bell_counts(self):
        counts = run_counts(load_qasm_benchmark("bell"), shots=2000, seed=6)
        assert set(counts) == {"00", "11"}

    def test_teleport_feed_forward(self):
        """Teleporting |1> must always read out 1."""
        circuit = load_qasm_benchmark("teleport")
        counts = run_counts(circuit, shots=200, seed=7)
        assert all(key[2] == "1" for key in counts)

    def test_controlled_h_macro(self):
        circuit = load_qasm_benchmark("controlled_h")
        counts = run_counts(circuit, shots=4000, seed=8)
        # control is |1>: target in |+> -> both outcomes, control always 1
        assert all(key[0] == "1" for key in counts)
        assert abs(counts.get("10", 0) - 2000) < 200

    def test_parity4_answer(self):
        counts = run_counts(load_qasm_benchmark("parity4"), shots=32, seed=9)
        assert counts == {"1010": 32}  # inputs 101, parity 0... bits c0..c3

    def test_repetition_code_corrects(self):
        counts = run_counts(load_qasm_benchmark("repetition3"), shots=64, seed=10)
        key = next(iter(counts))
        assert key[0] == "1"  # the logical |1> is recovered

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            load_qasm_benchmark("nope")
