"""Small cross-cutting tests: exception hierarchy, registry edges, repr."""

import pytest

from repro import CompileReport, QuantumCircuit, caqr_compile, __version__
from repro.exceptions import (
    CircuitError,
    DAGError,
    HardwareError,
    QasmError,
    ReproError,
    ReuseError,
    SimulationError,
    TranspilerError,
    WorkloadError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CircuitError,
            QasmError,
            DAGError,
            HardwareError,
            TranspilerError,
            SimulationError,
            ReuseError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_qasm_error_is_circuit_error(self):
        assert issubclass(QasmError, CircuitError)

    def test_catching_base_catches_subsystems(self):
        with pytest.raises(ReproError):
            raise ReuseError("x")


class TestPackageSurface:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_top_level_exports(self):
        report = caqr_compile(_bv(), mode="max_reuse")
        assert isinstance(report, CompileReport)

    def test_circuit_repr_and_str(self):
        circuit = QuantumCircuit(2, 1, name="demo")
        circuit.h(0)
        assert "demo" in repr(circuit)
        assert "h" in str(circuit)

    def test_instruction_str(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        assert "measure q0 -> c0" in str(circuit.data[0])
        assert "if c0==1" in str(circuit.data[1])


class TestRegistryEdges:
    def test_qaoa_name_variants(self):
        from repro.exceptions import WorkloadError
        from repro.workloads import qaoa_benchmark

        assert qaoa_benchmark("qaoa12-0.4").num_qubits == 12
        with pytest.raises(WorkloadError):
            qaoa_benchmark("qaoa-0.4")

    def test_drawer_ccx_symbols(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        text = circuit.draw()
        lines = text.splitlines()
        assert "*" in lines[0] and "*" in lines[1] and "X" in lines[2]


def _bv():
    from repro.workloads import bv_circuit

    return bv_circuit(4)
