"""Tests for ALAP scheduling and delay insertion."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import DEFAULT_DURATIONS
from repro.exceptions import TranspilerError
from repro.sim import run_counts
from repro.transpiler import schedule_asap
from repro.transpiler.timing import insert_delays, schedule_alap


def staircase() -> QuantumCircuit:
    circuit = QuantumCircuit(3, 3)
    circuit.x(0)
    circuit.x(0)
    circuit.x(1)          # q1 idles before/after depending on policy
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    for q in range(3):
        circuit.measure(q, q)
    return circuit


class TestALAP:
    def test_same_makespan_as_asap(self):
        circuit = staircase()
        assert schedule_alap(circuit).makespan == schedule_asap(circuit).makespan

    def test_instructions_pushed_late(self):
        circuit = staircase()
        asap = schedule_asap(circuit)
        alap = schedule_alap(circuit)
        # x(1) (index 2) idles early under ASAP, starts later under ALAP
        assert alap.entries[2].start > asap.entries[2].start

    def test_wire_order_preserved(self):
        circuit = staircase()
        alap = schedule_alap(circuit)
        for qubit in range(3):
            windows = [
                (e.start, e.finish)
                for e in alap.entries
                if qubit in e.instruction.qubits
            ]
            for (s1, f1), (s2, _) in zip(windows, windows[1:]):
                assert s2 >= f1

    def test_no_negative_starts(self):
        alap = schedule_alap(staircase())
        assert all(e.start >= 0 for e in alap.entries)


class TestInsertDelays:
    def test_gaps_materialised(self):
        circuit = staircase()
        timed = insert_delays(circuit)
        assert "delay" in timed.count_ops()

    def test_duration_preserved(self):
        circuit = staircase()
        timed = insert_delays(circuit)
        assert timed.duration_dt() == schedule_asap(circuit).makespan

    def test_alap_policy_duration_preserved(self):
        circuit = staircase()
        timed = insert_delays(circuit, policy="alap")
        assert timed.duration_dt() == schedule_asap(circuit).makespan

    def test_alap_moves_idle_before_gates(self):
        circuit = staircase()
        alap_timed = insert_delays(circuit, policy="alap")
        # under ALAP, q1's idle comes *before* its x gate
        q1_ops = [i for i in alap_timed.data if 1 in i.qubits]
        assert q1_ops[0].name == "delay"

    def test_semantics_unchanged(self):
        circuit = staircase()
        timed = insert_delays(circuit)
        counts_a = run_counts(circuit, shots=100, seed=1)
        counts_b = run_counts(timed, shots=100, seed=1)
        assert counts_a == counts_b

    def test_unknown_policy(self):
        with pytest.raises(TranspilerError):
            insert_delays(staircase(), policy="random")

    def test_gate_sequence_per_wire_unchanged(self):
        circuit = staircase()
        timed = insert_delays(circuit)
        for q in range(3):
            original = [
                i.name for i in circuit.data if q in i.qubits
            ]
            kept = [
                i.name
                for i in timed.data
                if q in i.qubits and i.name != "delay"
            ]
            assert kept == original
