"""Tests for native-basis translation."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.exceptions import TranspilerError
from repro.sim import final_statevector
from repro.transpiler.translation import NATIVE_BASIS, is_in_basis, translate_to_basis


def states_equal_up_to_phase(a, b, atol=1e-8):
    index = int(np.argmax(np.abs(b)))
    if abs(b[index]) < atol:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


class TestTranslation:
    def test_output_is_in_basis(self):
        circuit = random_circuit(4, 25, seed=1)
        translated = translate_to_basis(circuit)
        assert is_in_basis(translated)

    @pytest.mark.parametrize("seed", range(5))
    def test_semantics_preserved(self, seed):
        circuit = random_circuit(3, 15, seed=seed)
        translated = translate_to_basis(circuit)
        assert states_equal_up_to_phase(
            final_statevector(translated), final_statevector(circuit)
        )

    def test_hadamard_translation(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        translated = translate_to_basis(circuit)
        assert set(i.name for i in translated.data) <= {"rz", "sx"}
        assert states_equal_up_to_phase(
            final_statevector(translated), final_statevector(circuit)
        )

    def test_swap_becomes_three_cx(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        translated = translate_to_basis(circuit)
        assert translated.count_ops()["cx"] == 3

    def test_ccx_translated(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        translated = translate_to_basis(circuit)
        assert is_in_basis(translated)
        assert translated.count_ops()["cx"] == 6

    def test_rzz_structure(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.7, 0, 1)
        translated = translate_to_basis(circuit)
        assert translated.count_ops()["cx"] == 2
        assert states_equal_up_to_phase(
            final_statevector(translated), final_statevector(circuit)
        )

    def test_conditional_x_passes_through(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0).c_if(0, 1)
        translated = translate_to_basis(circuit)
        assert translated.data[1].condition == (0, 1)

    def test_conditioned_nonbasis_rejected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0).c_if(0, 1)
        with pytest.raises(TranspilerError):
            translate_to_basis(circuit)

    def test_measure_and_reset_survive(self):
        circuit = QuantumCircuit(1, 2)
        circuit.h(0)
        circuit.measure_and_reset(0, 0)
        circuit.measure(0, 1)
        translated = translate_to_basis(circuit)
        assert translated.count_ops()["measure"] == 2

    def test_idempotent_on_native(self):
        circuit = QuantumCircuit(2, 1)
        circuit.rz(0.3, 0)
        circuit.sx(0)
        circuit.cx(0, 1)
        circuit.measure(1, 0)
        translated = translate_to_basis(circuit)
        assert [i.name for i in translated.data] == [i.name for i in circuit.data]

    @pytest.mark.parametrize("name,args", [
        ("cz", ()), ("cy", ()), ("cp", (0.5,)), ("crz", (1.1,)),
    ])
    def test_each_two_qubit_gate(self, name, args):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        getattr(circuit, name)(*args, 0, 1)
        translated = translate_to_basis(circuit)
        assert is_in_basis(translated)
        assert states_equal_up_to_phase(
            final_statevector(translated), final_statevector(circuit)
        )
