"""Tests for ASAP scheduling and duration computation."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gates import CONDITIONAL_LATENCY_DT, DEFAULT_DURATIONS
from repro.hardware import generic_backend, line
from repro.transpiler import circuit_duration_dt, schedule_asap


class TestScheduleASAP:
    def test_serial_chain(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        schedule = schedule_asap(circuit)
        assert schedule.entries[0].start == 0
        assert schedule.entries[1].start == schedule.entries[0].finish
        assert schedule.makespan == 2 * DEFAULT_DURATIONS["cx"]

    def test_parallel_gates_overlap(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        schedule = schedule_asap(circuit)
        assert schedule.entries[0].start == 0
        assert schedule.entries[1].start == 0
        assert schedule.makespan == DEFAULT_DURATIONS["cx"]

    def test_feed_forward_serializes_on_clbit(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        schedule = schedule_asap(circuit)
        assert schedule.entries[1].start == schedule.entries[0].finish
        assert schedule.entries[1].duration == \
            DEFAULT_DURATIONS["x"] + CONDITIONAL_LATENCY_DT

    def test_barrier_takes_no_time(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.barrier(0)
        circuit.x(0)
        assert circuit_duration_dt(circuit) == 2 * DEFAULT_DURATIONS["x"]

    def test_calibrated_durations_used(self):
        backend = generic_backend(line(3), seed=4)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        duration = circuit_duration_dt(circuit, backend.calibration)
        assert duration == backend.calibration.get_cx_duration(0, 1)

    def test_paper_reset_comparison(self):
        """Fig. 2: measure+c_if(X) is about half of measure+reset."""
        cif = QuantumCircuit(1, 1)
        cif.measure_and_reset(0, 0, style="cif")
        builtin = QuantumCircuit(1, 1)
        builtin.measure_and_reset(0, 0, style="builtin")
        assert circuit_duration_dt(cif) == 16467
        assert circuit_duration_dt(builtin) == 33179

    def test_busy_and_idle_time(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.x(0)
        circuit.x(0)
        circuit.cx(0, 1)
        schedule = schedule_asap(circuit)
        x = DEFAULT_DURATIONS["x"]
        assert schedule.qubit_busy_time(0) == 3 * x + DEFAULT_DURATIONS["cx"]
        # qubit 1 waits for the three X gates before its CX
        assert schedule.qubit_idle_time(1) == 0  # first touch is the cx itself
        assert schedule.qubit_idle_time(0) == 0

    def test_idle_gap_detected(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)          # q1 busy briefly
        circuit.x(0)
        circuit.x(0)
        circuit.cx(0, 1)      # q1 idles waiting for q0
        schedule = schedule_asap(circuit)
        assert schedule.qubit_idle_time(1) == DEFAULT_DURATIONS["x"]
