"""Tests for the pass-manager framework."""

import pytest

from repro.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.hardware import ibm_mumbai
from repro.sim import run_counts
from repro.transpiler.passmanager import (
    BasePass,
    DecomposeToTwoQubit,
    InsertDelaysPass,
    PassManager,
    PeepholeOptimise,
    PropertySet,
    QubitReusePass,
    SabreLayoutPass,
    SabreRoutePass,
    TranslateToBasis,
    baseline_pass_manager,
)
from repro.workloads import bv_circuit


def assert_compliant(circuit, coupling):
    for instruction in circuit.data:
        if len(instruction.qubits) == 2 and not instruction.is_directive():
            assert coupling.are_adjacent(*instruction.qubits)


class TestPropertySet:
    def test_attribute_sugar(self):
        props = PropertySet()
        props.layout = "x"
        assert props["layout"] == "x"
        assert props.layout == "x"
        with pytest.raises(AttributeError):
            _ = props.missing


class TestPassManager:
    def test_baseline_pipeline_matches_transpile_contract(self):
        backend = ibm_mumbai()
        circuit = bv_circuit(6)
        pm = baseline_pass_manager(seed=5)
        compiled = pm.run(circuit, backend)
        assert_compliant(compiled, backend.coupling)
        assert pm.properties["swap_count"] == compiled.swap_count()

    def test_records_collected(self):
        backend = ibm_mumbai()
        pm = baseline_pass_manager(seed=5)
        pm.run(bv_circuit(4), backend)
        assert len(pm.records) == 4
        assert all(record.seconds >= 0 for record in pm.records)
        assert "SabreRoutePass" in pm.report()

    def test_native_basis_output(self):
        from repro.transpiler import is_in_basis

        backend = ibm_mumbai()
        pm = baseline_pass_manager(seed=5, native_basis=True)
        compiled = pm.run(bv_circuit(4), backend)
        assert is_in_basis(compiled)

    def test_pass_returning_none_rejected(self):
        class Broken(BasePass):
            def run(self, circuit, backend, properties):
                return None

        with pytest.raises(TranspilerError):
            PassManager([Broken()]).run(QuantumCircuit(1))

    def test_layout_pass_requires_backend(self):
        with pytest.raises(TranspilerError):
            PassManager([SabreLayoutPass()]).run(QuantumCircuit(2))

    def test_append_chains(self):
        pm = PassManager().append(DecomposeToTwoQubit()).append(PeepholeOptimise())
        assert len(pm.passes) == 2


class TestReusePassIntegration:
    def test_reuse_then_map_pipeline(self):
        """The paper's QS-CaQR flow as a pass pipeline."""
        backend = ibm_mumbai()
        pm = PassManager([
            QubitReusePass(qubit_limit=2),
            SabreLayoutPass(seed=3),
            SabreRoutePass(seed=3),
            PeepholeOptimise(merge_1q=False),
        ])
        compiled = pm.run(bv_circuit(6), backend)
        assert_compliant(compiled, backend.coupling)
        assert len(pm.properties["reuse_pairs"]) == 4
        counts = run_counts(compiled.compacted(), shots=80, seed=4)
        projected = {}
        for key, value in counts.items():
            projected[key[:5]] = projected.get(key[:5], 0) + value
        assert projected == {"11111": 80}

    def test_infeasible_budget_raises(self):
        with pytest.raises(TranspilerError):
            PassManager([QubitReusePass(qubit_limit=1)]).run(bv_circuit(4))

    def test_delay_pass(self):
        backend = ibm_mumbai()
        pm = PassManager([
            SabreLayoutPass(seed=3),
            SabreRoutePass(seed=3),
            InsertDelaysPass(policy="alap"),
        ])
        compiled = pm.run(bv_circuit(4), backend)
        assert "delay" in compiled.count_ops()
