"""Tests for peephole optimisation passes."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, gate_matrix
from repro.sim import final_statevector
from repro.transpiler import (
    cancel_adjacent_self_inverse,
    drop_identity_rotations,
    merge_single_qubit_runs,
    optimize_circuit,
    zyz_angles,
)


def states_equal_up_to_phase(a, b, atol=1e-8):
    index = int(np.argmax(np.abs(b)))
    if abs(b[index]) < atol:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


class TestZYZ:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "t", "sx"])
    def test_recovers_fixed_gates(self, name):
        matrix = gate_matrix(name)
        theta, phi, lam = zyz_angles(matrix)
        rebuilt = gate_matrix("u", (theta, phi, lam))
        index = np.unravel_index(np.argmax(np.abs(matrix)), matrix.shape)
        phase = matrix[index] / rebuilt[index]
        assert np.allclose(matrix, phase * rebuilt, atol=1e-9)

    @pytest.mark.parametrize("angle", [0.1, 1.0, math.pi / 2, 3.0])
    def test_recovers_rotations(self, angle):
        for name in ("rx", "ry", "rz"):
            matrix = gate_matrix(name, (angle,))
            theta, phi, lam = zyz_angles(matrix)
            rebuilt = gate_matrix("u", (theta, phi, lam))
            index = np.unravel_index(np.argmax(np.abs(matrix)), matrix.shape)
            phase = matrix[index] / rebuilt[index]
            assert np.allclose(matrix, phase * rebuilt, atol=1e-9)


class TestMergeSingleQubitRuns:
    def test_run_collapses_to_one_u(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.t(0)
        circuit.h(0)
        circuit.s(0)
        merged = merge_single_qubit_runs(circuit)
        assert merged.count_ops() == {"u": 1}
        assert states_equal_up_to_phase(
            final_statevector(merged), final_statevector(circuit)
        )

    def test_identity_run_dropped(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        merged = merge_single_qubit_runs(circuit)
        assert len(merged) == 0

    def test_two_qubit_gate_breaks_run(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(0)
        merged = merge_single_qubit_runs(circuit)
        names = [i.name for i in merged.data]
        assert names == ["u", "cx", "u"]

    def test_conditioned_gate_not_merged(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.x(0).c_if(0, 1)
        circuit.h(0)
        merged = merge_single_qubit_runs(circuit)
        names = [i.name for i in merged.data]
        assert "x" in names  # the conditioned gate survives verbatim
        assert merged.data[names.index("x")].condition == (0, 1)

    def test_measure_breaks_run(self):
        circuit = QuantumCircuit(1, 1)
        circuit.h(0)
        circuit.measure(0, 0)
        circuit.h(0)
        merged = merge_single_qubit_runs(circuit)
        assert [i.name for i in merged.data] == ["u", "measure", "u"]

    def test_semantics_preserved_on_mixed_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.t(0)
        circuit.ry(0.3, 1)
        circuit.cx(0, 1)
        circuit.sdg(1)
        circuit.rx(1.1, 1)
        merged = merge_single_qubit_runs(circuit)
        assert states_equal_up_to_phase(
            final_statevector(merged), final_statevector(circuit)
        )


class TestCancellation:
    def test_adjacent_cx_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert len(cancelled) == 0

    def test_reversed_cx_does_not_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert cancelled.count_ops()["cx"] == 2

    def test_cz_cancels_in_any_order(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cz(1, 0)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert len(cancelled) == 0

    def test_interposed_gate_blocks_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.x(1)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert cancelled.count_ops()["cx"] == 2

    def test_gate_on_other_wire_does_not_block(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.h(2)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert "cx" not in cancelled.count_ops()

    def test_fixed_point_cascade(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(0)
        circuit.h(0)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert len(cancelled) == 0

    def test_triple_leaves_one(self):
        circuit = QuantumCircuit(2)
        for _ in range(3):
            circuit.cx(0, 1)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert cancelled.count_ops()["cx"] == 1

    def test_conditioned_gates_never_cancel(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).c_if(0, 1)
        circuit.x(0).c_if(0, 1)
        cancelled = cancel_adjacent_self_inverse(circuit)
        assert cancelled.count_ops()["x"] == 2


class TestDropIdentities:
    def test_zero_rotation_dropped(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.0, 0)
        circuit.rx(2 * math.pi, 0)
        assert len(drop_identity_rotations(circuit)) == 0

    def test_nonzero_rotation_kept(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.5, 0)
        assert len(drop_identity_rotations(circuit)) == 1

    def test_id_gate_dropped(self):
        circuit = QuantumCircuit(1)
        circuit.id(0)
        assert len(drop_identity_rotations(circuit)) == 0


class TestFullPass:
    def test_optimize_preserves_semantics(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.t(1)
        circuit.tdg(1)
        circuit.rz(0.0, 2)
        circuit.ry(0.7, 2)
        circuit.cx(1, 2)
        optimized = optimize_circuit(circuit)
        assert states_equal_up_to_phase(
            final_statevector(optimized), final_statevector(circuit)
        )
        assert optimized.two_qubit_gate_count() < circuit.two_qubit_gate_count()
