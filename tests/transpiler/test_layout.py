"""Tests for Layout and seed layout heuristics."""

import pytest

from repro.exceptions import TranspilerError
from repro.hardware import line, star
from repro.transpiler import Layout, greedy_degree_layout, trivial_layout


class TestLayout:
    def test_assign_and_lookup(self):
        layout = Layout(2, 4)
        layout.assign(0, 3)
        assert layout.physical(0) == 3
        assert layout.logical(3) == 0
        assert layout.logical(0) is None

    def test_double_assign_rejected(self):
        layout = Layout(2, 4)
        layout.assign(0, 1)
        with pytest.raises(TranspilerError):
            layout.assign(0, 2)
        with pytest.raises(TranspilerError):
            layout.assign(1, 1)

    def test_wider_than_device_allowed_for_reuse(self):
        # SR-CaQR maps more logical qubits than the device has, reusing
        # wires; only trivial_layout insists on a one-to-one fit
        layout = Layout(5, 3)
        assert layout.num_logical == 5
        with pytest.raises(TranspilerError):
            trivial_layout(5, 3)

    def test_release_frees_physical(self):
        layout = Layout(1, 2)
        layout.assign(0, 1)
        physical = layout.release(0)
        assert physical == 1
        assert not layout.is_mapped(0)
        assert 1 in layout.free_physical()

    def test_release_unmapped_raises(self):
        layout = Layout(1, 2)
        with pytest.raises(TranspilerError):
            layout.release(0)

    def test_free_physical(self):
        layout = Layout(1, 3)
        layout.assign(0, 1)
        assert layout.free_physical() == [0, 2]

    def test_swap_physical_both_occupied(self):
        layout = Layout(2, 2)
        layout.assign(0, 0)
        layout.assign(1, 1)
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_swap_physical_with_free_slot(self):
        layout = Layout(1, 2)
        layout.assign(0, 0)
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.logical(0) is None

    def test_copy_is_independent(self):
        layout = Layout(1, 2)
        layout.assign(0, 0)
        duplicate = layout.copy()
        duplicate.swap_physical(0, 1)
        assert layout.physical(0) == 0

    def test_as_dict(self):
        layout = Layout(2, 4)
        layout.assign(1, 3)
        assert layout.as_dict() == {1: 3}


class TestSeedLayouts:
    def test_trivial(self):
        layout = trivial_layout(3, 5)
        assert layout.as_dict() == {0: 0, 1: 1, 2: 2}

    def test_greedy_puts_hub_on_high_degree(self):
        # logical hub (degree 4) should land on the star's centre
        degrees = {0: 1, 1: 1, 2: 4, 3: 1, 4: 1}
        coupling = star(5)
        layout = greedy_degree_layout(degrees, coupling, 5)
        assert layout.physical(2) == 0

    def test_greedy_total_mapping(self):
        degrees = {q: 1 for q in range(4)}
        layout = greedy_degree_layout(degrees, line(6), 4)
        mapped = layout.as_dict()
        assert len(mapped) == 4
        assert len(set(mapped.values())) == 4
