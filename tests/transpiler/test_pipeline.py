"""Tests for the end-to-end transpile pipeline (the paper's baseline)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.exceptions import TranspilerError
from repro.hardware import falcon_27, generic_backend, ibm_mumbai, line
from repro.sim import run_counts
from repro.transpiler import decompose_ccx, transpile


def assert_compliant(circuit, coupling):
    for instruction in circuit.data:
        if len(instruction.qubits) == 2 and not instruction.is_directive():
            assert coupling.are_adjacent(*instruction.qubits)


class TestDecomposition:
    def test_ccx_expansion_semantics(self):
        from repro.sim import final_statevector
        import numpy as np

        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.x(1)
        circuit.ccx(0, 1, 2)
        expanded = decompose_ccx(circuit)
        assert "ccx" not in expanded.count_ops()
        state_a = final_statevector(circuit)
        state_b = final_statevector(expanded)
        index = int(np.argmax(np.abs(state_a)))
        phase = state_b[index] / state_a[index]
        assert np.allclose(state_b, phase * state_a, atol=1e-9)

    def test_ccx_expansion_count(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        assert decompose_ccx(circuit).count_ops()["cx"] == 6


class TestTranspile:
    def test_levels_produce_compliant_circuits(self):
        backend = generic_backend(falcon_27(), seed=1)
        circuit = random_circuit(6, 30, seed=2, measure=True)
        for level in range(4):
            result = transpile(circuit, backend, optimization_level=level, seed=7)
            assert_compliant(result.circuit, backend.coupling)

    def test_bad_level_rejected(self):
        backend = generic_backend(line(3))
        with pytest.raises(TranspilerError):
            transpile(QuantumCircuit(2), backend, optimization_level=9)

    def test_too_wide_rejected(self):
        backend = generic_backend(line(3))
        from repro.exceptions import HardwareError

        with pytest.raises(HardwareError):
            transpile(QuantumCircuit(5), backend)

    def test_metrics_recorded(self):
        backend = ibm_mumbai()
        circuit = random_circuit(5, 25, seed=3, measure=True)
        result = transpile(circuit, backend, optimization_level=3, seed=5)
        assert result.swap_count == result.circuit.swap_count()
        assert result.depth == result.circuit.depth()
        assert result.duration_dt > 0
        assert result.qubits_used <= backend.num_qubits

    def test_level3_not_worse_than_level0(self):
        backend = ibm_mumbai()
        circuit = random_circuit(6, 40, seed=4)
        level0 = transpile(circuit, backend, optimization_level=0, seed=5)
        level3 = transpile(circuit, backend, optimization_level=3, seed=5)
        assert level3.two_qubit_count <= level0.two_qubit_count

    def test_semantics_preserved_through_pipeline(self):
        backend = generic_backend(line(4), seed=6)
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 2)
        circuit.cx(1, 2)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        circuit.measure(2, 2)
        result = transpile(circuit, backend, optimization_level=3, seed=8)
        counts_logical = run_counts(circuit, shots=4000, seed=9)
        counts_compiled = run_counts(result.circuit, shots=4000, seed=9)
        for key in set(counts_logical) | set(counts_compiled):
            assert abs(counts_logical.get(key, 0) - counts_compiled.get(key, 0)) < 300

    def test_ccx_handled_by_pipeline(self):
        backend = ibm_mumbai()
        circuit = QuantumCircuit(3, 3)
        circuit.ccx(0, 1, 2)
        circuit.measure_all()
        result = transpile(circuit, backend, optimization_level=1, seed=2)
        assert "ccx" not in result.circuit.count_ops()
        assert_compliant(result.circuit, backend.coupling)
