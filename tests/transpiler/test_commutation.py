"""Tests for commutation analysis and commutation-aware cancellation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuit import Instruction, QuantumCircuit
from repro.sim import final_statevector
from repro.transpiler.commutation import (
    commutation_aware_cancel,
    instructions_commute,
)
from tests.property.strategies import circuits


def states_equal_up_to_phase(a, b, atol=1e-8):
    index = int(np.argmax(np.abs(b)))
    if abs(b[index]) < atol:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    return np.allclose(a, phase * b, atol=atol)


class TestCommutationRelation:
    def test_disjoint_wires_commute(self):
        assert instructions_commute(Instruction("h", (0,)), Instruction("x", (1,)))

    def test_diagonal_gates_commute(self):
        assert instructions_commute(
            Instruction("rz", (0,), params=(0.3,)), Instruction("cz", (0, 1))
        )
        assert instructions_commute(
            Instruction("rzz", (0, 1), params=(0.3,)),
            Instruction("rzz", (1, 2), params=(0.5,)),
        )

    def test_rz_through_cx_control(self):
        assert instructions_commute(
            Instruction("rz", (0,), params=(0.3,)), Instruction("cx", (0, 1))
        )

    def test_rz_blocked_at_cx_target(self):
        assert not instructions_commute(
            Instruction("rz", (1,), params=(0.3,)), Instruction("cx", (0, 1))
        )

    def test_x_through_cx_target(self):
        assert instructions_commute(Instruction("x", (1,)), Instruction("cx", (0, 1)))

    def test_x_blocked_at_cx_control(self):
        assert not instructions_commute(
            Instruction("x", (0,)), Instruction("cx", (0, 1))
        )

    def test_h_never_assumed_to_commute_on_shared_wire(self):
        assert not instructions_commute(Instruction("h", (0,)), Instruction("cx", (0, 1)))

    def test_measure_blocks(self):
        assert not instructions_commute(
            Instruction("measure", (0,), clbits=(0,)),
            Instruction("rz", (0,), params=(0.1,)),
        )

    def test_shared_clbit_blocks(self):
        a = Instruction("measure", (0,), clbits=(0,))
        b = Instruction("x", (1,), condition=(0, 1))
        assert not instructions_commute(a, b)

    def test_commutation_is_actually_true(self):
        """Numeric spot-check of every claimed commuting pair."""
        from repro.circuit.gates import gate_matrix

        def two_qubit_op(instruction, n=2):
            full = np.eye(2**n, dtype=complex)
            matrix = gate_matrix(instruction.name, instruction.params)
            circuit = QuantumCircuit(n)
            circuit.append(instruction)
            state = np.eye(2**n, dtype=complex)
            # build operator column by column via simulator
            from repro.sim import Statevector

            out = np.zeros((2**n, 2**n), dtype=complex)
            for column in range(2**n):
                sv = Statevector(n)
                sv.amplitudes = np.zeros(2**n, dtype=complex)
                sv.amplitudes[column] = 1.0
                sv.apply_matrix(matrix, instruction.qubits)
                out[:, column] = sv.amplitudes
            return out

        cases = [
            (Instruction("rz", (0,), params=(0.37,)), Instruction("cx", (0, 1))),
            (Instruction("x", (1,)), Instruction("cx", (0, 1))),
            (Instruction("rzz", (0, 1), params=(0.7,)), Instruction("cz", (0, 1))),
        ]
        for a, b in cases:
            assert instructions_commute(a, b)
            op_a, op_b = two_qubit_op(a), two_qubit_op(b)
            assert np.allclose(op_a @ op_b, op_b @ op_a, atol=1e-10)


class TestCommutationAwareCancel:
    def test_rz_between_cx_pair(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.5, 0)
        circuit.cx(0, 1)
        result = commutation_aware_cancel(circuit)
        assert "cx" not in result.count_ops()
        assert result.count_ops()["rz"] == 1

    def test_x_on_target_between_cx_pair(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.x(1)
        circuit.cx(0, 1)
        result = commutation_aware_cancel(circuit)
        assert "cx" not in result.count_ops()

    def test_blocking_gate_prevents_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(0, 1)
        result = commutation_aware_cancel(circuit)
        assert result.count_ops()["cx"] == 2

    def test_plain_adjacent_still_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cz(0, 1)
        assert len(commutation_aware_cancel(circuit)) == 0

    @given(circuits(max_qubits=3, max_gates=14))
    @settings(max_examples=30, deadline=None)
    def test_semantics_preserved(self, circuit):
        result = commutation_aware_cancel(circuit)
        assert len(result) <= len(circuit)
        assert states_equal_up_to_phase(
            final_statevector(result), final_statevector(circuit)
        )

    def test_never_grows(self):
        circuit = QuantumCircuit(3)
        circuit.rzz(0.5, 0, 1)
        circuit.rzz(0.5, 1, 2)
        circuit.rzz(0.5, 0, 2)
        result = commutation_aware_cancel(circuit)
        assert len(result) <= 3
