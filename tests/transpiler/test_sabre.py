"""Tests for SABRE routing and layout: hardware compliance + semantics."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.exceptions import TranspilerError
from repro.hardware import CouplingMap, falcon_27, grid, line, ring
from repro.sim import run_counts
from repro.transpiler import sabre_layout, sabre_route, trivial_layout


def assert_hardware_compliant(circuit: QuantumCircuit, coupling: CouplingMap):
    for instruction in circuit.data:
        if len(instruction.qubits) == 2 and not instruction.is_directive():
            a, b = instruction.qubits
            assert coupling.are_adjacent(a, b), f"{instruction} not on an edge"


class TestSabreRoute:
    def test_adjacent_gates_untouched(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        result = sabre_route(circuit, line(2))
        assert result.swap_count == 0
        assert result.circuit.count_ops()["cx"] == 1

    def test_distant_gate_needs_swaps(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        result = sabre_route(circuit, line(4))
        assert result.swap_count >= 1
        assert_hardware_compliant(result.circuit, line(4))

    def test_three_qubit_gate_rejected(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(TranspilerError):
            sabre_route(circuit, line(3))

    def test_too_wide_circuit_rejected(self):
        circuit = QuantumCircuit(5)
        with pytest.raises(TranspilerError):
            sabre_route(circuit, line(3))

    def test_compliance_on_random_circuits(self):
        coupling = grid(3, 3)
        for seed in range(5):
            circuit = random_circuit(8, 40, seed=seed)
            result = sabre_route(circuit, coupling, seed=seed)
            assert_hardware_compliant(result.circuit, coupling)

    def test_all_gates_preserved(self):
        coupling = ring(5)
        circuit = random_circuit(5, 30, seed=3)
        result = sabre_route(circuit, coupling)
        original = circuit.count_ops()
        routed = result.circuit.count_ops()
        for name, count in original.items():
            if name != "swap":
                assert routed[name] == count

    def test_semantic_equivalence_small(self):
        """Routed circuit must produce the same output distribution."""
        circuit = QuantumCircuit(3, 3)
        circuit.h(0)
        circuit.cx(0, 2)  # non-adjacent on a line
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        circuit.measure(2, 2)
        coupling = line(3)
        result = sabre_route(circuit, coupling, seed=5)
        assert_hardware_compliant(result.circuit, coupling)
        counts_logical = run_counts(circuit, shots=4000, seed=42)
        counts_routed = run_counts(result.circuit, shots=4000, seed=42)
        for key in set(counts_logical) | set(counts_routed):
            assert abs(
                counts_logical.get(key, 0) - counts_routed.get(key, 0)
            ) < 300

    def test_measures_remapped_to_physical(self):
        circuit = QuantumCircuit(2, 2)
        circuit.measure(1, 1)
        layout = trivial_layout(2, 3)
        layout.swap_physical(1, 2)
        result = sabre_route(circuit, line(3), initial_layout=layout)
        measure = [i for i in result.circuit.data if i.name == "measure"][0]
        assert measure.qubits == (2,)
        assert measure.clbits == (1,)

    def test_final_layout_tracks_swaps(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        result = sabre_route(circuit, line(3), seed=1)
        # final layout must be a permutation of the initial
        mapped = result.final_layout.as_dict()
        assert sorted(mapped.keys()) == [0, 1, 2]
        assert len(set(mapped.values())) == 3


class TestSabreLayout:
    def test_layout_reduces_swaps_for_star_program(self):
        """BV-style star interaction: a good layout centres the hub."""
        n = 3
        circuit = QuantumCircuit(n + 1)
        for q in range(n):
            circuit.cx(q, n)
        coupling = CouplingMap(4, [(0, 1), (1, 2), (1, 3)])  # star on 1
        layout = sabre_layout(circuit, coupling, seed=3)
        routed = sabre_route(circuit, coupling, layout, seed=3)
        trivial = sabre_route(circuit, coupling, seed=3)
        assert routed.swap_count <= trivial.swap_count
        assert routed.swap_count == 0  # hub fits on physical qubit 1

    def test_layout_on_falcon(self):
        circuit = random_circuit(6, 30, seed=9)
        coupling = falcon_27()
        layout = sabre_layout(circuit, coupling, seed=9, iterations=2, trials=2)
        result = sabre_route(circuit, coupling, layout, seed=9)
        assert_hardware_compliant(result.circuit, coupling)
