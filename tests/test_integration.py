"""Cross-module integration tests: the full pipelines the paper describes.

These tie together workloads -> CaQR passes -> transpiler -> simulator and
assert end-to-end behaviour (correct answers, hardware compliance, metric
consistency) rather than unit-level contracts.
"""

import pytest

from repro.analysis import collect_metrics
from repro.circuit import parse_qasm, to_qasm
from repro.core import (
    QSCaQR,
    QSCaQRCommuting,
    SRCaQR,
    assess_reuse_benefit,
    select_point,
    sweep_regular,
)
from repro.hardware import ibm_mumbai
from repro.sim import (
    NoiseModel,
    run_counts,
    run_physical_counts,
    total_variation_distance,
)
from repro.transpiler import transpile
from repro.workloads import (
    bv_circuit,
    bv_expected_bitstring,
    qaoa_maxcut_circuit,
    random_graph,
    regular_benchmark,
)


def project(counts, width):
    out = {}
    for key, value in counts.items():
        out[key[:width]] = out.get(key[:width], 0) + value
    return out


class TestQSPipeline:
    """Logical reuse -> hardware mapping -> simulation."""

    def test_bv10_full_pipeline(self):
        backend = ibm_mumbai()
        circuit = bv_circuit(10)
        reused = QSCaQR().reduce_to(circuit, 2)
        assert reused.feasible
        compiled = transpile(reused.circuit, backend, optimization_level=3, seed=3)
        for instruction in compiled.circuit.data:
            if len(instruction.qubits) == 2 and not instruction.is_directive():
                assert backend.coupling.are_adjacent(*instruction.qubits)
        counts = run_physical_counts(
            compiled.circuit, backend, shots=100, seed=7,
            noise=NoiseModel.ideal(),
        )
        assert project(counts, 9) == {bv_expected_bitstring(10): 100}

    def test_sweep_select_compile_roundtrip(self):
        backend = ibm_mumbai()
        points = sweep_regular(regular_benchmark("xor_5"), backend=backend)
        chosen = select_point(points, "min_depth")
        report = assess_reuse_benefit(points)
        assert report.beneficial
        metrics = collect_metrics(chosen.circuit)
        assert metrics.qubits_used == chosen.qubits

    def test_reused_circuit_survives_qasm_roundtrip_and_simulation(self):
        reused = QSCaQR().reduce_to(bv_circuit(6), 2).circuit
        parsed = parse_qasm(to_qasm(reused))
        counts = run_counts(parsed, shots=80, seed=9)
        assert project(counts, 5) == {"11111": 80}


class TestSRPipeline:
    def test_sr_compiles_all_regular_benchmarks(self):
        backend = ibm_mumbai()
        for name in ("rd_32", "4mod5", "system_9", "bv_10", "cc_10", "xor_5"):
            circuit = regular_benchmark(name)
            result = SRCaQR(backend).run(circuit)
            for instruction in result.circuit.data:
                if len(instruction.qubits) == 2 and not instruction.is_directive():
                    assert backend.coupling.are_adjacent(*instruction.qubits), name
            metrics = collect_metrics(result.circuit, backend.calibration)
            assert metrics.swap_count == result.swap_count, name

    def test_sr_beats_or_ties_baseline_swaps_on_star_circuits(self):
        backend = ibm_mumbai()
        for name in ("bv_10", "xor_5", "cc_10"):
            circuit = regular_benchmark(name)
            baseline = transpile(circuit, backend, optimization_level=3, seed=5)
            sr = SRCaQR(backend).run(circuit)
            assert sr.swap_count <= baseline.swap_count, name


class TestCommutingPipeline:
    def test_qaoa_reuse_distribution_under_ideal_noise(self):
        graph = random_graph(6, 0.4, seed=5)
        plain = qaoa_maxcut_circuit(graph)
        compiler = QSCaQRCommuting(graph)
        floor = compiler.sweep()[-1]
        counts_plain = run_counts(plain, shots=6000, seed=11)
        counts_reused = run_counts(floor.circuit, shots=6000, seed=11)
        tvd = total_variation_distance(
            project(counts_plain, 6), project(counts_reused, 6)
        )
        assert tvd < 0.08

    def test_lifetime_and_greedy_agree_semantically(self):
        graph = random_graph(6, 0.4, seed=6)
        compiler = QSCaQRCommuting(graph)
        greedy_floor = compiler.sweep()[-1]
        lifetime_floor = compiler.lifetime_sweep()[-1]
        counts_a = run_counts(greedy_floor.circuit, shots=6000, seed=12)
        counts_b = run_counts(lifetime_floor.circuit, shots=6000, seed=12)
        tvd = total_variation_distance(project(counts_a, 6), project(counts_b, 6))
        assert tvd < 0.08
