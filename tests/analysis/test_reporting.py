"""Tests for metric collection and report formatting."""

from repro.analysis import (
    collect_metrics,
    format_percent,
    format_series,
    format_table,
)
from repro.circuit import QuantumCircuit
from repro.workloads import bv_circuit


class TestCollectMetrics:
    def test_basic_counts(self):
        circuit = bv_circuit(5)
        metrics = collect_metrics(circuit)
        assert metrics.qubits_used == 5
        assert metrics.two_qubit_count == 4
        assert metrics.swap_count == 0
        assert metrics.depth == circuit.depth()

    def test_reuse_resets_counted(self):
        circuit = QuantumCircuit(1, 2)
        circuit.measure_and_reset(0, 0)
        circuit.measure_and_reset(0, 1, style="builtin")
        metrics = collect_metrics(circuit)
        assert metrics.reuse_resets == 2

    def test_plain_x_not_counted_as_reset(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        assert collect_metrics(circuit).reuse_resets == 0

    def test_as_row_shape(self):
        row = collect_metrics(bv_circuit(3)).as_row()
        assert len(row) == 5


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["b", 22.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[3]
        assert "22.5" in lines[4]

    def test_series(self):
        text = format_series("fig", [1, 2], [10, 20], "x", "y")
        assert "fig" in text
        assert text.count("\n") == 2

    def test_percent(self):
        assert format_percent(0.375) == "37.5%"
