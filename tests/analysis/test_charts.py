"""Tests for ASCII chart rendering."""

from repro.analysis.charts import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_empty(self):
        assert ascii_line_chart([]) == "(no data)"

    def test_single_series_dimensions(self):
        text = ascii_line_chart(
            [("depth", [1, 2, 3, 4], [10, 20, 15, 40])], width=30, height=8
        )
        lines = text.splitlines()
        plot_rows = [line for line in lines if line.startswith("|")]
        assert len(plot_rows) == 8
        assert all(len(row) <= 31 for row in plot_rows)

    def test_markers_in_legend(self):
        text = ascii_line_chart(
            [("a", [0, 1], [0, 1]), ("b", [0, 1], [1, 0])]
        )
        assert "* = a" in text
        assert "+ = b" in text

    def test_extremes_plotted(self):
        text = ascii_line_chart([("s", [0, 10], [0, 100])], width=20, height=5)
        rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("*")   # max y at top-right
        assert rows[-1].startswith("*")          # min y at bottom-left

    def test_constant_series_no_crash(self):
        text = ascii_line_chart([("flat", [1, 2, 3], [5, 5, 5])])
        assert "*" in text


class TestBarChart:
    def test_empty(self):
        assert ascii_bar_chart([], []) == "(no data)"

    def test_proportions(self):
        text = ascii_bar_chart(["a", "b"], [10, 5], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_value_has_no_bar(self):
        text = ascii_bar_chart(["zero", "one"], [0, 1])
        assert "#" not in text.splitlines()[0]

    def test_unit_suffix(self):
        text = ascii_bar_chart(["x"], [3.5], unit="dt")
        assert "3.5dt" in text
