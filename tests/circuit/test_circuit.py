"""Unit tests for QuantumCircuit."""

import pytest

from repro.circuit import Instruction, QuantumCircuit
from repro.exceptions import CircuitError


def bv_circuit(n: int) -> QuantumCircuit:
    """Bernstein-Vazirani with all-ones secret over n data qubits."""
    circuit = QuantumCircuit(n + 1, n)
    circuit.x(n)
    circuit.h(n)
    for q in range(n):
        circuit.h(q)
        circuit.cx(q, n)
        circuit.h(q)
        circuit.measure(q, q)
    return circuit


class TestBuilding:
    def test_gate_methods_append(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        assert len(circuit) == 2
        assert circuit.data[0].name == "h"
        assert circuit.data[1].qubits == (0, 1)

    def test_out_of_range_qubit_raises(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_out_of_range_clbit_raises(self):
        circuit = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError):
            circuit.measure(0, 1)

    def test_condition_clbit_checked(self):
        circuit = QuantumCircuit(1, 1)
        with pytest.raises(CircuitError):
            circuit.append(Instruction("x", (0,), condition=(5, 1)))

    def test_measure_all_grows_creg(self):
        circuit = QuantumCircuit(3, 0)
        circuit.measure_all()
        assert circuit.num_clbits == 3
        assert circuit.count_ops()["measure"] == 3

    def test_parametric_gates(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.5, 0)
        circuit.rzz(1.0, 0, 1)
        circuit.cp(0.25, 0, 1)
        assert circuit.data[0].params == (0.5,)
        assert circuit.data[1].params == (1.0,)

    def test_barrier_default_covers_all(self):
        circuit = QuantumCircuit(3)
        circuit.barrier()
        assert circuit.data[0].qubits == (0, 1, 2)


class TestMeasureAndReset:
    def test_cif_style(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure_and_reset(0, 0)
        assert [i.name for i in circuit.data] == ["measure", "x"]
        assert circuit.data[1].condition == (0, 1)

    def test_builtin_style(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure_and_reset(0, 0, style="builtin")
        assert [i.name for i in circuit.data] == ["measure", "reset"]

    def test_unknown_style_raises(self):
        circuit = QuantumCircuit(1, 1)
        with pytest.raises(CircuitError):
            circuit.measure_and_reset(0, 0, style="bogus")

    def test_cif_is_faster_than_builtin(self):
        """Paper Fig. 2: the optimised reset takes about half the time."""
        cif = QuantumCircuit(1, 1)
        cif.measure_and_reset(0, 0, style="cif")
        builtin = QuantumCircuit(1, 1)
        builtin.measure_and_reset(0, 0, style="builtin")
        assert cif.duration_dt() < 0.55 * builtin.duration_dt()


class TestAnalysis:
    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.h(1)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert circuit.depth() == 2

    def test_depth_serial_chain(self):
        circuit = QuantumCircuit(2)
        for _ in range(5):
            circuit.cx(0, 1)
        assert circuit.depth() == 5

    def test_barrier_not_counted_in_depth_but_orders(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        # h(1) must come after the barrier which comes after h(0)
        assert circuit.depth() == 2

    def test_measure_then_conditional_serializes_via_clbit(self):
        circuit = QuantumCircuit(2, 1)
        circuit.measure(0, 0)
        circuit.x(1).c_if(0, 1)
        assert circuit.depth() == 2

    def test_count_ops_and_size(self):
        circuit = bv_circuit(3)
        ops = circuit.count_ops()
        assert ops["cx"] == 3
        assert ops["measure"] == 3
        assert circuit.size() == len(circuit.data)

    def test_two_qubit_gate_count(self):
        circuit = bv_circuit(4)
        assert circuit.two_qubit_gate_count() == 4

    def test_used_qubits_skips_idle_wires(self):
        circuit = QuantumCircuit(5)
        circuit.h(1)
        circuit.cx(1, 3)
        assert circuit.used_qubits() == [1, 3]
        assert circuit.num_used_qubits() == 2

    def test_interaction_graph_star_for_bv(self):
        """Paper Fig. 4(b): BV's interaction graph is a star on the target."""
        n = 4
        graph = bv_circuit(n).interaction_graph()
        degrees = dict(graph.degree())
        assert degrees[n] == n
        for q in range(n):
            assert degrees[q] == 1

    def test_interaction_graph_edge_counts(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        graph = circuit.interaction_graph()
        assert graph[0][1]["count"] == 2

    def test_duration_uses_gate_durations(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert circuit.duration_dt() == circuit.data[0].duration_dt()


class TestDynamicDetection:
    def test_static_circuit(self):
        circuit = bv_circuit(2)
        # measurements are terminal per qubit: still "dynamic-free"? BV measures
        # each qubit after its last gate, and no gate follows a measure on the
        # same qubit, no resets, no conditions.
        assert not circuit.has_dynamic_operations()

    def test_mid_circuit_measurement_detected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.h(0)
        assert circuit.has_dynamic_operations()

    def test_conditional_detected(self):
        circuit = QuantumCircuit(1, 1)
        circuit.x(0).c_if(0, 1)
        assert circuit.has_dynamic_operations()

    def test_reset_detected(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        assert circuit.has_dynamic_operations()


class TestComposeAndCopy:
    def test_copy_independent(self):
        circuit = bv_circuit(2)
        duplicate = circuit.copy()
        duplicate.h(0)
        assert len(duplicate) == len(circuit) + 1

    def test_compose_identity(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b)
        assert [i.name for i in combined.data] == ["h", "cx"]

    def test_compose_with_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b, qubits=[2, 0])
        assert combined.data[0].qubits == (2, 0)

    def test_compose_bad_mapping_raises(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            a.compose(b, qubits=[0])

    def test_remap_qubits(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        remapped = circuit.remap_qubits({0: 1, 2: 0, 1: 2}, num_qubits=3)
        assert remapped.data[0].qubits == (1, 0)

    def test_equality(self):
        assert bv_circuit(2) == bv_circuit(2)
        assert bv_circuit(2) != bv_circuit(3)
