"""Tests for the ASCII circuit drawer."""

from repro.circuit import QuantumCircuit
from repro.circuit.drawer import draw
from repro.workloads import bv_circuit


class TestDraw:
    def test_one_row_per_qubit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        text = draw(circuit)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0: ")
        assert lines[2].startswith("q2: ")

    def test_gate_symbols(self):
        circuit = QuantumCircuit(2, 1)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(1, 0)
        text = draw(circuit)
        assert "H" in text
        assert "*" in text and "X" in text
        assert "M" in text

    def test_conditional_annotation(self):
        circuit = QuantumCircuit(1, 1)
        circuit.measure(0, 0)
        circuit.x(0).c_if(0, 1)
        assert "X?c0" in draw(circuit)

    def test_reset_symbol(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        assert "|0>" in draw(circuit)

    def test_parallel_gates_share_column(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        lines = draw(circuit).splitlines()
        # both H at the same column position
        assert lines[0].index("H") == lines[1].index("H")

    def test_serial_gates_use_new_columns(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.x(0)
        line = draw(circuit).splitlines()[0]
        assert line.index("H") < line.index("X")

    def test_crossed_wire_marks_span(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        lines = draw(circuit).splitlines()
        assert "|" in lines[1]

    def test_parametric_label(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.5, 0)
        assert "RZ(0.5)" in draw(circuit)

    def test_long_circuit_wraps(self):
        circuit = QuantumCircuit(1)
        for _ in range(200):
            circuit.x(0)
        text = draw(circuit, max_width=60)
        assert all(len(line) <= 60 for line in text.splitlines())

    def test_reused_bv_renders(self):
        from repro.core import QSCaQR

        reused = QSCaQR().reduce_to(bv_circuit(4), 2).circuit
        text = draw(reused)
        assert "X?c" in text  # the reuse reset idiom is visible
