"""Tests for the generic circuit library."""

import math

import numpy as np
import pytest

from repro.circuit.library import bell_pair, ghz, linear_entangler, qft
from repro.exceptions import CircuitError
from repro.sim import final_statevector, run_counts


class TestBellAndGHZ:
    def test_bell_pair_state(self):
        state = final_statevector(bell_pair())
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(state[3]) == pytest.approx(1 / math.sqrt(2))

    def test_ghz_measured_counts(self):
        counts = run_counts(ghz(3, measure=True), shots=2000, seed=1)
        assert set(counts) == {"000", "111"}

    def test_ghz_width(self):
        circuit = ghz(5)
        assert circuit.num_qubits == 5
        assert circuit.num_clbits == 0

    def test_ghz_needs_one_qubit(self):
        with pytest.raises(CircuitError):
            ghz(0)


class TestQFT:
    def test_qft_gate_count(self):
        circuit = qft(4)
        ops = circuit.count_ops()
        assert ops["h"] == 4
        assert ops["cp"] == 6  # n(n-1)/2 controlled phases

    def test_qft_on_zero_is_uniform(self):
        state = final_statevector(qft(3))
        assert np.allclose(np.abs(state), 1 / math.sqrt(8))

    def test_qft_unitary_on_basis_state(self):
        """QFT|1> has the expected phase ramp."""
        from repro.circuit import QuantumCircuit

        n = 3
        circuit = QuantumCircuit(n)
        circuit.x(n - 1)  # |001> = integer 1 (qubit 0 most significant)
        prepared = circuit.compose(qft(n))
        state = final_statevector(prepared)
        # phases should rotate uniformly; magnitudes stay flat
        assert np.allclose(np.abs(state), 1 / math.sqrt(8))

    def test_qft_fully_connected_interaction(self):
        graph = qft(4).interaction_graph()
        assert graph.number_of_edges() == 6

    def test_qft_needs_one_qubit(self):
        with pytest.raises(CircuitError):
            qft(0)


class TestEntangler:
    def test_layer_structure(self):
        circuit = linear_entangler(4, layers=2)
        ops = circuit.count_ops()
        assert ops["ry"] == 8
        assert ops["cx"] == 6  # 3 per layer on 4 qubits

    def test_minimum_width(self):
        with pytest.raises(CircuitError):
            linear_entangler(1)


class TestGoldenReuseFloors:
    """Regression guards: compiled widths for the benchmark suite."""

    def test_floors(self):
        from repro.core import lifetime_compile_regular
        from repro.workloads import regular_benchmark

        expected = {
            "rd_32": 4,
            "4mod5": 4,
            "xor_5": 2,
            "system_9": 3,
            "bv_10": 2,
            "cc_10": 2,
            "multiply_13": 8,
        }
        for name, floor in expected.items():
            result = lifetime_compile_regular(regular_benchmark(name))
            assert result.qubits == floor, name

    def test_qft_admits_no_reuse(self):
        """All-to-all interaction: the negative control for the library."""
        from repro.core import valid_reuse_pairs

        circuit = qft(4)
        circuit.measure_all()
        assert valid_reuse_pairs(circuit) == []
