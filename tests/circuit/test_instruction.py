"""Unit tests for Instruction."""

import pytest

from repro.circuit import Instruction
from repro.circuit.gates import CONDITIONAL_LATENCY_DT, default_duration
from repro.exceptions import CircuitError


class TestConstruction:
    def test_basic_gate(self):
        instruction = Instruction("cx", (0, 1))
        assert instruction.qubits == (0, 1)
        assert instruction.is_two_qubit()
        assert instruction.is_unitary()

    def test_wrong_qubit_arity_raises(self):
        with pytest.raises(CircuitError):
            Instruction("cx", (0,))

    def test_duplicate_qubits_raise(self):
        with pytest.raises(CircuitError):
            Instruction("cx", (1, 1))

    def test_wrong_param_count_raises(self):
        with pytest.raises(CircuitError):
            Instruction("rz", (0,))

    def test_measure_needs_clbit(self):
        with pytest.raises(CircuitError):
            Instruction("measure", (0,))
        instruction = Instruction("measure", (0,), clbits=(3,))
        assert instruction.clbits == (3,)

    def test_barrier_needs_qubits(self):
        with pytest.raises(CircuitError):
            Instruction("barrier")
        instruction = Instruction("barrier", (0, 1, 2))
        assert instruction.is_directive()

    def test_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            Instruction("nope", (0,))


class TestConditions:
    def test_c_if_returns_self_and_sets_condition(self):
        instruction = Instruction("x", (0,))
        result = instruction.c_if(2, 1)
        assert result is instruction
        assert instruction.condition == (2, 1)

    def test_bad_condition_value(self):
        with pytest.raises(CircuitError):
            Instruction("x", (0,)).c_if(0, 5)
        with pytest.raises(CircuitError):
            Instruction("x", (0,), condition=(0, 3))

    def test_conditional_adds_latency(self):
        plain = Instruction("x", (0,))
        conditioned = Instruction("x", (0,), condition=(0, 1))
        assert conditioned.duration_dt() == plain.duration_dt() + CONDITIONAL_LATENCY_DT


class TestRemap:
    def test_remap_qubits_with_dict(self):
        instruction = Instruction("cx", (0, 1))
        remapped = instruction.remapped({0: 5, 1: 3})
        assert remapped.qubits == (5, 3)
        assert instruction.qubits == (0, 1)  # original untouched

    def test_remap_with_callable(self):
        instruction = Instruction("cx", (0, 1))
        remapped = instruction.remapped(lambda q: q + 10)
        assert remapped.qubits == (10, 11)

    def test_remap_clbits_and_condition(self):
        instruction = Instruction("measure", (0,), clbits=(1,), condition=None)
        instruction2 = Instruction("x", (0,), condition=(1, 1))
        assert instruction.remapped(None, {1: 7}).clbits == (7,)
        assert instruction2.remapped(None, {1: 7}).condition == (7, 1)

    def test_copy_is_independent(self):
        instruction = Instruction("x", (0,))
        duplicate = instruction.copy()
        duplicate.c_if(0, 1)
        assert instruction.condition is None


class TestDuration:
    def test_default_duration_matches_registry(self):
        assert Instruction("cx", (0, 1)).duration_dt() == default_duration("cx")
