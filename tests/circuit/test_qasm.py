"""Tests for the OpenQASM 2.0 parser and exporter."""

import math

import pytest

from repro.circuit import QuantumCircuit, parse_qasm, to_qasm
from repro.exceptions import QasmError

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestParser:
    def test_minimal_program(self):
        circuit = parse_qasm(HEADER + "qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n")
        assert circuit.num_qubits == 2
        assert circuit.num_clbits == 2
        assert [i.name for i in circuit.data] == ["h", "cx"]

    def test_measure_arrow(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; creg c[1]; measure q[0] -> c[0];")
        assert circuit.data[0].name == "measure"
        assert circuit.data[0].clbits == (0,)

    def test_register_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg q[3]; creg c[3]; h q; measure q -> c;")
        assert circuit.count_ops()["h"] == 3
        assert circuit.count_ops()["measure"] == 3

    def test_parameter_expressions(self):
        circuit = parse_qasm(HEADER + "qreg q[1]; rz(pi/2) q[0]; rx(-pi) q[0]; ry(2*pi/4) q[0];")
        assert circuit.data[0].params[0] == pytest.approx(math.pi / 2)
        assert circuit.data[1].params[0] == pytest.approx(-math.pi)
        assert circuit.data[2].params[0] == pytest.approx(math.pi / 2)

    def test_u_aliases(self):
        circuit = parse_qasm(
            HEADER + "qreg q[1]; u1(0.5) q[0]; u2(0.1,0.2) q[0]; u3(1,2,3) q[0];"
        )
        assert circuit.data[0].name == "p"
        assert circuit.data[1].name == "u"
        assert circuit.data[1].params[0] == pytest.approx(math.pi / 2)
        assert circuit.data[2].name == "u"

    def test_multiple_registers_flatten(self):
        circuit = parse_qasm(HEADER + "qreg a[2]; qreg b[2]; cx a[1], b[0];")
        assert circuit.num_qubits == 4
        assert circuit.data[0].qubits == (1, 2)

    def test_gate_macro_inlined(self):
        text = HEADER + (
            "gate mygate(t) a, b { h a; cx a, b; rz(t/2) b; }\n"
            "qreg q[2];\nmygate(pi) q[0], q[1];\n"
        )
        circuit = parse_qasm(text)
        assert [i.name for i in circuit.data] == ["h", "cx", "rz"]
        assert circuit.data[2].params[0] == pytest.approx(math.pi / 2)

    def test_nested_macro(self):
        text = HEADER + (
            "gate inner a { h a; }\n"
            "gate outer a, b { inner a; cx a, b; }\n"
            "qreg q[2];\nouter q[0], q[1];\n"
        )
        circuit = parse_qasm(text)
        assert [i.name for i in circuit.data] == ["h", "cx"]

    def test_if_condition_single_bit(self):
        text = HEADER + "qreg q[1]; creg c[1]; measure q[0] -> c[0]; if (c == 1) x q[0];"
        circuit = parse_qasm(text)
        assert circuit.data[1].condition == (0, 1)

    def test_if_condition_wide_register_rejected(self):
        text = HEADER + "qreg q[1]; creg c[2]; if (c == 1) x q[0];"
        with pytest.raises(QasmError):
            parse_qasm(text)

    def test_reset_and_barrier(self):
        circuit = parse_qasm(HEADER + "qreg q[2]; reset q[0]; barrier q[0], q[1];")
        assert circuit.data[0].name == "reset"
        assert circuit.data[1].name == "barrier"

    def test_comments_ignored(self):
        circuit = parse_qasm(HEADER + "// header comment\nqreg q[1]; h q[0]; // trailing\n")
        assert len(circuit) == 1

    def test_unknown_gate_raises(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1]; zorp q[0];")

    def test_out_of_range_index_raises(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1]; h q[5];")

    def test_bad_character_raises(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1]; h q[0] @;")

    def test_opaque_skipped(self):
        circuit = parse_qasm(HEADER + "opaque magic a, b; qreg q[1]; h q[0];")
        assert len(circuit) == 1


class TestExporter:
    def test_roundtrip_simple(self):
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        parsed = parse_qasm(to_qasm(circuit))
        assert [i.name for i in parsed.data] == [i.name for i in circuit.data]
        assert parsed.num_qubits == circuit.num_qubits

    def test_roundtrip_parametric(self):
        circuit = QuantumCircuit(2)
        circuit.rz(1.2345, 0)
        circuit.rzz(0.5, 0, 1)
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.data[0].params[0] == pytest.approx(1.2345)

    def test_roundtrip_dynamic_reset(self):
        """The reuse idiom (measure + conditional X) must survive a roundtrip."""
        circuit = QuantumCircuit(2, 2)
        circuit.h(0)
        circuit.measure_and_reset(0, 0)
        circuit.h(0)
        circuit.measure(0, 1)
        parsed = parse_qasm(to_qasm(circuit))
        names = [i.name for i in parsed.data]
        assert names == ["h", "measure", "x", "h", "measure"]
        conditional = parsed.data[2]
        assert conditional.condition is not None
        assert conditional.condition[1] == 1
        # the condition must read the same bit the first measure wrote
        assert conditional.condition[0] == parsed.data[1].clbits[0]

    def test_exports_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.barrier(0, 1)
        assert "barrier q[0], q[1];" in to_qasm(circuit)

    def test_header_present(self):
        circuit = QuantumCircuit(1)
        text = to_qasm(circuit)
        assert text.startswith("OPENQASM 2.0;")
