"""Unit tests for the gate registry."""

import math

import numpy as np
import pytest

from repro.circuit import gates
from repro.exceptions import CircuitError


def _is_unitary(matrix: np.ndarray) -> bool:
    dim = matrix.shape[0]
    return np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


class TestGateRegistry:
    def test_all_specs_have_matching_name(self):
        for name, spec in gates.GATES.items():
            assert spec.name == name

    def test_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            gates.gate_spec("frobnicate")

    def test_every_unitary_gate_matrix_is_unitary(self):
        for name, spec in gates.GATES.items():
            if spec.matrix_fn is None:
                continue
            params = tuple(0.37 * (i + 1) for i in range(spec.num_params))
            matrix = gates.gate_matrix(name, params)
            assert matrix.shape == (2**spec.num_qubits, 2**spec.num_qubits)
            assert _is_unitary(matrix), f"{name} is not unitary"

    def test_matrix_param_count_checked(self):
        with pytest.raises(CircuitError):
            gates.gate_matrix("rz")
        with pytest.raises(CircuitError):
            gates.gate_matrix("h", (0.1,))

    def test_measure_has_no_matrix(self):
        with pytest.raises(CircuitError):
            gates.gate_matrix("measure")
        assert not gates.is_unitary_gate("measure")

    def test_two_qubit_classification(self):
        assert gates.is_two_qubit_gate("cx")
        assert gates.is_two_qubit_gate("rzz")
        assert not gates.is_two_qubit_gate("h")
        assert not gates.is_two_qubit_gate("ccx")

    def test_directive_classification(self):
        assert gates.is_directive("barrier")
        assert not gates.is_directive("cx")


class TestGateMatrices:
    def test_hadamard_squares_to_identity(self):
        h = gates.gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2))

    def test_cx_action_on_basis(self):
        cx = gates.gate_matrix("cx")
        # |10> (control=1, target=0) -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[3])
        # |00> unchanged
        assert np.allclose(cx @ np.eye(4)[0], np.eye(4)[0])

    def test_rz_phases(self):
        rz = gates.gate_matrix("rz", (math.pi,))
        assert np.allclose(rz, np.diag([-1j, 1j]))

    def test_rzz_diagonal(self):
        theta = 0.7
        rzz = gates.gate_matrix("rzz", (theta,))
        assert np.allclose(np.diag(rzz).imag[0], -math.sin(theta / 2))
        assert np.allclose(rzz, np.diag(np.diag(rzz)))

    def test_swap_matrix(self):
        swap = gates.gate_matrix("swap")
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, np.eye(4)[2])  # -> |10>

    def test_u_reduces_to_known_gates(self):
        u = gates.gate_matrix("u", (math.pi / 2, 0.0, math.pi))
        h = gates.gate_matrix("h")
        assert np.allclose(u, h, atol=1e-10)

    def test_sx_squares_to_x(self):
        sx = gates.gate_matrix("sx")
        x = gates.gate_matrix("x")
        assert np.allclose(sx @ sx, x)

    def test_ccx_flips_only_when_both_controls_set(self):
        ccx = gates.gate_matrix("ccx")
        assert np.allclose(ccx @ np.eye(8)[6], np.eye(8)[7])
        assert np.allclose(ccx @ np.eye(8)[5], np.eye(8)[5])


class TestDurations:
    def test_paper_reset_figures(self):
        """Paper Section 2.1: measure+reset = 33,179 dt; measure+c_if(X) = 16,467 dt."""
        measure = gates.default_duration("measure")
        reset = gates.default_duration("reset")
        x = gates.default_duration("x")
        assert measure + reset == 33179
        assert measure + x + gates.CONDITIONAL_LATENCY_DT == 16467

    def test_virtual_rz(self):
        assert gates.default_duration("rz") == 0

    def test_two_qubit_slower_than_one_qubit(self):
        assert gates.default_duration("cx") > gates.default_duration("x")
