#!/usr/bin/env python
"""Cross-process smoke test for the networked compile service.

The acceptance drill for the HTTP front-end, run by the CI
``server-smoke`` job and locally via::

    PYTHONPATH=src python scripts/server_smoke.py

Four checks against one real ``repro serve`` subprocess on a loopback
port:

1. **cross-process dedup** — eight client *processes* request the same
   cold ``bv_40`` compile concurrently; the server must pay for exactly
   one compilation (``/v1/stats`` ``misses == 1``) and hand every client
   a bit-identical report (compared as canonical ``report_to_dict``
   JSON);
2. **remote == local** — the report that crossed the wire equals an
   in-process ``caqr_compile`` field-for-field;
3. **stats** — ``/v1/stats`` is non-empty and counted every request;
4. **graceful drain** — SIGTERM lands while a cold compile is
   in flight; the client still receives its result, the server drains
   and exits 0.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

N_CLIENTS = 8
DEDUP_WIDTH = 40  # ~1s cold: every client arrives inside the compile window
DRAIN_WIDTH = 50  # ~3s cold: SIGTERM reliably lands mid-request


def _client_worker(url: str, width: int, queue) -> None:
    """One client process: compile bv_<width> and report what it saw."""
    from repro.service import RemoteCompileService
    from repro.service.serialization import report_to_dict
    from repro.service.service import CompileRequest
    from repro.workloads import bv_circuit

    client = RemoteCompileService(url, timeout=300)
    report, fingerprint, status = client.compile_classified(
        CompileRequest(target=bv_circuit(width))
    )
    record = report_to_dict(report)
    record.pop("from_cache", None)  # only the paying client differs here
    queue.put(
        {
            "pid": os.getpid(),
            "fingerprint": fingerprint,
            "status": status,
            "report_json": json.dumps(record, sort_keys=True),
        }
    )


def _start_server() -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline().strip()
    if not line.startswith("serving on "):
        process.kill()
        raise SystemExit(f"server did not announce itself: {line!r}")
    host_port = line[len("serving on "):]
    return process, f"http://{host_port}"


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main() -> int:
    context = multiprocessing.get_context("spawn")
    server, url = _start_server()
    print(f"server up at {url} (pid {server.pid})")
    try:
        # -- 1. eight processes, one cold compile --------------------------
        queue = context.Queue()
        workers = [
            context.Process(target=_client_worker, args=(url, DEDUP_WIDTH, queue))
            for _ in range(N_CLIENTS)
        ]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=300) for _ in workers]
        for worker in workers:
            worker.join(30)
        check(len(results) == N_CLIENTS, f"all {N_CLIENTS} clients answered")
        fingerprints = {r["fingerprint"] for r in results}
        check(len(fingerprints) == 1, "every client agreed on the fingerprint")
        payloads = {r["report_json"] for r in results}
        check(len(payloads) == 1, "every client received a bit-identical report")
        statuses = sorted(r["status"] for r in results)
        check(
            statuses.count("miss") <= 1,
            f"at most one client paid for the compile (statuses: {statuses})",
        )

        from repro.service import RemoteCompileService

        observer = RemoteCompileService(url, timeout=60)
        stats = observer.stats()["stats"]
        check(
            stats["counters"].get("misses") == 1,
            f"server compiled exactly once (misses={stats['counters'].get('misses')})",
        )
        check(
            stats["counters"].get("requests", 0) >= N_CLIENTS,
            "server counted every client request",
        )
        check(bool(stats["counters"]), "/v1/stats is non-empty")

        # -- 2. the wire report equals a local compile ---------------------
        from repro.compile_api import caqr_compile
        from repro.service.serialization import report_to_dict
        from repro.workloads import bv_circuit

        local = report_to_dict(caqr_compile(bv_circuit(DEDUP_WIDTH)))
        local.pop("from_cache", None)
        check(
            json.dumps(local, sort_keys=True) == results[0]["report_json"],
            "remote report equals the in-process compile field-for-field",
        )

        # -- 3. SIGTERM mid-request drains cleanly -------------------------
        queue = context.Queue()
        straggler = context.Process(
            target=_client_worker, args=(url, DRAIN_WIDTH, queue)
        )
        straggler.start()
        time.sleep(1.0)  # let the cold compile get going
        server.send_signal(signal.SIGTERM)
        late = queue.get(timeout=300)
        straggler.join(30)
        check(
            late["status"] in ("miss", "hit", "inflight"),
            "in-flight request completed through the drain",
        )
        code = server.wait(timeout=60)
        check(code == 0, f"server exited cleanly after SIGTERM (code {code})")
        tail = server.stdout.read()
        check("server drained and stopped" in tail, "server logged a clean drain")
    finally:
        if server.poll() is None:
            server.kill()
    print("server smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
