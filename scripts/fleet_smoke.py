#!/usr/bin/env python
"""Cross-process smoke test for the consistent-hash compile fleet.

The acceptance drill for the gateway, run by the CI ``fleet-smoke`` job
and locally via::

    PYTHONPATH=src python scripts/fleet_smoke.py

Five checks against three real ``repro serve`` subprocesses fronted by
one real ``repro gateway`` subprocess, all on loopback ports:

1. **fleet-wide dedup** — eight client *processes* request the same
   cold ``bv_40`` compile through the gateway; the whole fleet pays for
   exactly one compilation, every client gets a bit-identical report,
   and the compile landed on the backend the hash ring predicts
   (computed out-of-process with the same sha256 ring);
2. **SIGKILL failover** — one backend is killed mid-run while clients
   hammer a spread of keys; zero client-visible errors (requests walk
   to the next replica);
3. **interim ownership** — a key whose full-ring owner is the dead
   backend compiles exactly once on its stand-in;
4. **peer cache fill** — the dead backend is respawned on the same
   port with a cold cache; when the key re-homes to it, the gateway
   replays the stand-in's warm envelope and fills the rejoined owner —
   no recompile (the respawned backend's ``misses`` stays 0);
5. **metrics** — the gateway's ``/v1/metrics`` body parses with the
   strict test-suite parser and carries the fleet families
   (``peer_fills``, ``marked_down{backend=...}``, ``backends_up``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)
sys.path.insert(0, REPO_ROOT)  # for tests.service.test_metrics helpers

N_SERVERS = 3
N_CLIENTS = 8
DEDUP_WIDTH = 40  # ~1s cold: every client arrives inside the compile window
HAMMER_SECONDS = 4.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def _spawn(args, announce="serving on "):
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline().strip()
    if not line.startswith(announce):
        process.kill()
        raise SystemExit(f"{args[0]} did not announce itself: {line!r}")
    host_port = line[len(announce):].split(" ")[0]
    return process, f"http://{host_port}"


def _start_server(port=0):
    return _spawn(["serve", "--port", str(port)])


def _start_gateway(backend_urls):
    args = ["gateway", "--port", "0", "--probe-interval", "0.3",
            "--mark-down-after", "2"]
    for url in backend_urls:
        args += ["--backend", url]
    return _spawn(args)


def _client_worker(url: str, width: int, queue) -> None:
    """One client process: compile bv_<width> and report what it saw."""
    from repro.service import RemoteCompileService
    from repro.service.serialization import report_to_dict
    from repro.service.service import CompileRequest
    from repro.workloads import bv_circuit

    client = RemoteCompileService(url, timeout=300)
    report, fingerprint, status = client.compile_classified(
        CompileRequest(target=bv_circuit(width))
    )
    record = report_to_dict(report)
    record.pop("from_cache", None)  # only the paying client differs here
    queue.put(
        {
            "pid": os.getpid(),
            "fingerprint": fingerprint,
            "status": status,
            "report_json": json.dumps(record, sort_keys=True),
        }
    )


def _hammer_worker(url: str, widths, deadline_s: float, queue) -> None:
    """Loop warm compiles across ``widths`` until the deadline; count errors."""
    from repro.service import RemoteCompileService
    from repro.workloads import bv_circuit

    client = RemoteCompileService(url, timeout=120, backoff=0.05)
    requests = errors = 0
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        for width in widths:
            requests += 1
            try:
                client.compile(bv_circuit(width))
            except Exception as exc:
                errors += 1
                queue.put({"error": f"bv_{width}: {type(exc).__name__}: {exc}"})
    queue.put({"requests": requests, "errors": errors})


def _backend_misses(gateway_url):
    from repro.service import RemoteCompileService

    payload = RemoteCompileService(gateway_url, timeout=60).stats()
    return {
        url: entry.get("stats", {}).get("counters", {}).get("misses", 0)
        for url, entry in payload["backends"].items()
    }


def main() -> int:
    context = multiprocessing.get_context("spawn")
    servers = {}
    for _ in range(N_SERVERS):
        process, url = _start_server()
        servers[url] = process
    urls = list(servers)
    gateway, gateway_url = _start_gateway(urls)
    print(f"fleet: {urls} behind {gateway_url}")

    from repro.service import RemoteCompileService
    from repro.service.fleet import HashRing, ring_key
    from repro.service.service import CompileRequest
    from repro.workloads import bv_circuit

    try:
        # -- 1. eight processes, one cold compile fleet-wide ---------------
        queue = context.Queue()
        workers = [
            context.Process(
                target=_client_worker, args=(gateway_url, DEDUP_WIDTH, queue)
            )
            for _ in range(N_CLIENTS)
        ]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=300) for _ in workers]
        for worker in workers:
            worker.join(30)
        check(len(results) == N_CLIENTS, f"all {N_CLIENTS} clients answered")
        payloads = {r["report_json"] for r in results}
        check(len(payloads) == 1, "every client received a bit-identical report")
        misses = _backend_misses(gateway_url)
        check(
            sum(misses.values()) == 1,
            f"the fleet compiled exactly once ({misses})",
        )
        ring = HashRing(urls)
        request = CompileRequest(target=bv_circuit(DEDUP_WIDTH))
        predicted = ring.owner(ring_key(request.shard(), request.fingerprint()))
        check(
            misses[predicted] == 1,
            f"the compile landed on the ring-predicted backend {predicted}",
        )

        # -- pre-warm a key spread for the failover hammer -----------------
        widths = list(range(3, 9))
        observer = RemoteCompileService(gateway_url, timeout=120)
        for width in widths:
            observer.compile(bv_circuit(width))

        # -- pick the victim: not the owner of the dedup key ---------------
        victim = next(url for url in urls if url != predicted)
        victim_port = int(victim.rsplit(":", 1)[1])
        # a probe key whose full-ring owner is the victim (for phases 3-4)
        probe_width = next(
            w
            for w in range(9, 64)
            if ring.owner(
                ring_key(
                    CompileRequest(target=bv_circuit(w)).shard(),
                    CompileRequest(target=bv_circuit(w)).fingerprint(),
                )
            )
            == victim
        )

        # -- 2. SIGKILL one backend while clients hammer warm keys ---------
        queue = context.Queue()
        hammers = [
            context.Process(
                target=_hammer_worker,
                args=(gateway_url, widths, HAMMER_SECONDS, queue),
            )
            for _ in range(4)
        ]
        for worker in hammers:
            worker.start()
        time.sleep(1.0)
        servers[victim].kill()
        print(f"killed backend {victim} (pid {servers[victim].pid})")
        summaries, errors = [], []
        deadline = time.time() + HAMMER_SECONDS + 120
        while len(summaries) < len(hammers) and time.time() < deadline:
            item = queue.get(timeout=120)
            (summaries if "requests" in item else errors).append(item)
        for worker in hammers:
            worker.join(30)
        total = sum(s["requests"] for s in summaries)
        check(
            not errors and all(s["errors"] == 0 for s in summaries),
            f"zero client-visible errors across {total} requests "
            f"with a backend dying mid-run (errors: {errors[:3]})",
        )

        # -- 3. the dead backend's keys compile once on a stand-in ---------
        cold = observer.compile(bv_circuit(probe_width))
        check(
            not cold.from_cache,
            f"bv_{probe_width} (owned by the dead backend) compiled cold "
            "on its stand-in",
        )
        warm = observer.compile(bv_circuit(probe_width))
        check(warm.from_cache, "and is warm on the stand-in afterwards")

        # -- 4. respawn the victim: re-homed key fills from its peer -------
        process, reborn_url = _start_server(victim_port)
        check(reborn_url == victim, f"backend respawned at {victim}")
        servers[victim] = process
        deadline = time.time() + 30
        health = {}
        while time.time() < deadline:
            health = observer.health()
            if victim in health.get("fleet", {}).get("up", []):
                break
            time.sleep(0.2)
        check(
            victim in health.get("fleet", {}).get("up", []),
            "the gateway re-probed the respawned backend into the ring",
        )
        refilled = observer.compile(bv_circuit(probe_width))
        check(
            refilled.from_cache,
            f"bv_{probe_width} stayed warm through the re-home "
            "(peer fill, no recompile)",
        )
        check(
            refilled.metrics == cold.metrics,
            "re-homed report matches the original compile",
        )
        reborn_misses = _backend_misses(gateway_url)[victim]
        check(
            reborn_misses == 0,
            f"the respawned backend never recompiled (misses={reborn_misses})",
        )

        # -- 5. gateway metrics parse with the strict test parser ----------
        from tests.service.test_metrics import parse_prometheus, sample_value

        body = observer.metrics()
        types, samples = parse_prometheus(body)
        check(
            types.get("caqr_gateway_peer_fills_total") == "counter"
            and sample_value(samples, "caqr_gateway_peer_fills_total") >= 1,
            "gateway counted the peer fill",
        )
        marked = [
            (labels.get("backend"), value)
            for name, labels, value in samples
            if name == "caqr_gateway_marked_down_total"
        ]
        check(
            any(url == victim and value >= 1 for url, value in marked),
            f"gateway counted the mark-down of {victim}",
        )
        check(
            sample_value(samples, "caqr_gateway_backends_up") == N_SERVERS,
            "every backend is back up in the gauge",
        )
    finally:
        gateway.terminate()
        for process in servers.values():
            if process.poll() is None:
                process.terminate()
        gateway.wait(timeout=30)
        for process in servers.values():
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
    print("fleet smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
