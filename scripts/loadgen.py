#!/usr/bin/env python
"""Load generator for the networked compile service.

Drives a configurable request mix against a ``repro serve`` instance and
reports latency percentiles (p50/p90/p99/max) and the error rate, per
operation and overall.  Point it at a running server with ``--url``, or
let it self-host one on a background thread (loopback, port 0, request
log enabled) when ``--url`` is omitted::

    PYTHONPATH=src python scripts/loadgen.py --duration 10 --rps 50
    PYTHONPATH=src python scripts/loadgen.py --url http://host:8787 \
        --mix warm=0.6,cold=0.2,batch=0.1,portfolio=0.1

Operations:

* ``warm`` — repeat compile of one fixed circuit: after the first hit
  this exercises the encoded-envelope fast path;
* ``cold`` — every request mints a fresh fingerprint (the seed varies),
  measuring the full compile path;
* ``batch`` — a 3-member ``/v1/compile_batch`` of warm keys;
* ``portfolio`` — a warm ``strategy="portfolio"`` compile;
* ``shard`` — round-robins one circuit over several distinct synthetic
  calibrations, so requests spread across cache shards — and, through a
  ``repro gateway``, across backends (each calibration's shard digest
  pins it to one ring owner).

``--fleet`` switches the default mix to a shard-heavy profile and, when
the target turns out to be a gateway (its ``/v1/stats`` carries a
``backends`` map), prints per-backend request counts and hit rates
after the run.  With no ``--url`` it self-hosts a miniature fleet —
three backend threads sharing one request log behind a gateway thread —
instead of a single server.

``--smoke`` runs a short self-checking pass for CI: it fails (exit 1) on
any 5xx/transport error, on a warm p99 above ``--p99-budget``, on an
unparseable ``/v1/metrics`` body, or (self-hosted) on a request-log line
that is not schema-complete JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.exceptions import RemoteServiceError  # noqa: E402
from repro.service import (  # noqa: E402
    CompileService,
    RemoteCompileService,
    start_gateway_thread,
    start_server_thread,
)
from repro.service.reqlog import RECORD_FIELDS, RequestLog  # noqa: E402
from repro.service.service import CompileRequest  # noqa: E402
from repro.workloads import bv_circuit  # noqa: E402

DEFAULT_MIX = "warm=0.7,cold=0.1,batch=0.1,portfolio=0.1"
FLEET_MIX = "warm=0.35,shard=0.45,cold=0.1,batch=0.1"
OPERATIONS = ("warm", "cold", "batch", "portfolio", "shard")
N_SHARD_CALIBRATIONS = 6


def parse_mix(text: str):
    """``warm=0.7,cold=0.3`` -> normalized ``{op: weight}``."""
    weights = {}
    for part in text.split(","):
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in OPERATIONS:
            raise SystemExit(f"unknown operation {name!r} in --mix (pick from {OPERATIONS})")
        weights[name] = float(value)
    total = sum(weights.values())
    if total <= 0:
        raise SystemExit("--mix weights must sum to something positive")
    return {name: weight / total for name, weight in weights.items()}


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values)) - 1))
    return sorted_values[rank]


class Recorder:
    """Thread-safe (op, latency, error) sample sink."""

    def __init__(self):
        self._lock = threading.Lock()
        self.latencies = {name: [] for name in OPERATIONS}
        self.errors = {name: 0 for name in OPERATIONS}
        self.server_errors = 0  # 5xx / transport failures specifically

    def record(self, op, seconds, error=None, server_error=False):
        with self._lock:
            if error is None:
                self.latencies[op].append(seconds)
            else:
                self.errors[op] += 1
                if server_error:
                    self.server_errors += 1

    def summary(self):
        with self._lock:
            rows = {}
            everything = []
            total_errors = 0
            for op in OPERATIONS:
                values = sorted(self.latencies[op])
                errors = self.errors[op]
                total_errors += errors
                if not values and not errors:
                    continue
                everything.extend(values)
                rows[op] = {
                    "count": len(values),
                    "errors": errors,
                    "p50_ms": percentile(values, 0.50) * 1000,
                    "p90_ms": percentile(values, 0.90) * 1000,
                    "p99_ms": percentile(values, 0.99) * 1000,
                    "max_ms": (values[-1] * 1000) if values else 0.0,
                }
            everything.sort()
            total = len(everything) + total_errors
            rows["overall"] = {
                "count": len(everything),
                "errors": total_errors,
                "error_rate": (total_errors / total) if total else 0.0,
                "server_errors": self.server_errors,
                "p50_ms": percentile(everything, 0.50) * 1000,
                "p90_ms": percentile(everything, 0.90) * 1000,
                "p99_ms": percentile(everything, 0.99) * 1000,
                "max_ms": (everything[-1] * 1000) if everything else 0.0,
            }
            return rows


class Mix:
    """Weighted operation picker + per-op request factories."""

    def __init__(self, weights, width, seed):
        self.names = sorted(weights)
        self.weights = [weights[name] for name in self.names]
        self.width = width
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._cold_counter = 0
        self.warm_request = CompileRequest(target=bv_circuit(width))
        self.portfolio_request = CompileRequest(
            target=bv_circuit(width), strategy="portfolio", objective="qubits"
        )
        self.batch_requests = [
            CompileRequest(target=bv_circuit(width + offset))
            for offset in (0, 1, 2)
        ]
        from repro.hardware import generic_backend, line

        # distinct calibration seeds -> distinct shard digests: through a
        # gateway each one consistently lands on its own ring owner
        self.shard_requests = [
            CompileRequest(
                target=bv_circuit(width),
                backend=generic_backend(line(width + 2), seed=1000 + k),
            )
            for k in range(N_SHARD_CALIBRATIONS)
        ]
        self._shard_counter = 0

    def pick(self):
        with self._lock:
            return self._rng.choices(self.names, weights=self.weights)[0]

    def shard_request(self):
        with self._lock:
            self._shard_counter += 1
            return self.shard_requests[
                self._shard_counter % len(self.shard_requests)
            ]

    def cold_request(self):
        with self._lock:
            self._cold_counter += 1
            # a fresh seed mints a fresh fingerprint: a genuine cold miss
            return CompileRequest(target=bv_circuit(self.width), seed=1000 + self._cold_counter)


def run_op(client, mix, op):
    if op == "warm":
        client.compile_classified(mix.warm_request)
    elif op == "cold":
        client.compile_classified(mix.cold_request())
    elif op == "batch":
        client.compile_batch(mix.batch_requests)
    elif op == "portfolio":
        client.compile_classified(mix.portfolio_request)
    elif op == "shard":
        client.compile_classified(mix.shard_request())


def worker(url, mix, recorder, deadline, interval, timeout):
    client = RemoteCompileService(url, timeout=timeout, retries=0)
    try:
        while time.monotonic() < deadline:
            op = mix.pick()
            start = time.perf_counter()
            try:
                run_op(client, mix, op)
            except RemoteServiceError as exc:
                status = getattr(exc, "status", None)
                recorder.record(
                    op, 0.0, error=exc,
                    server_error=status is None or status >= 500,
                )
            else:
                recorder.record(op, time.perf_counter() - start)
            # open-loop pacing: hold the per-thread rate steady
            sleep_for = interval - (time.perf_counter() - start)
            if sleep_for > 0:
                time.sleep(sleep_for)
    finally:
        client.close()


def prime(url, mix, weights, timeout):
    """Warm every repeated lane once so the run measures steady state."""
    client = RemoteCompileService(url, timeout=timeout, retries=0)
    try:
        client.compile_classified(mix.warm_request)
        if weights.get("portfolio"):
            client.compile_classified(mix.portfolio_request)
        if weights.get("batch"):
            client.compile_batch(mix.batch_requests)
        if weights.get("shard"):
            for request in mix.shard_requests:
                client.compile_classified(request)
    finally:
        client.close()


def print_fleet_report(stats_payload):
    """Per-backend request counts and hit rates (gateway targets only)."""
    backends = stats_payload.get("backends")
    if not isinstance(backends, dict) or not backends:
        return
    print("\nper-backend (gateway view):")
    header = f"{'backend':<28} {'requests':>9} {'hits':>7} {'misses':>7} {'hit rate':>9}"
    print(header)
    print("-" * len(header))
    for url in sorted(backends):
        counters = backends[url].get("stats", {}).get("counters", {})
        hits = counters.get("hits", 0) + counters.get("inflight_hits", 0)
        misses = counters.get("misses", 0)
        requests = counters.get("requests", 0)
        served = hits + misses
        rate = (hits / served) if served else 0.0
        print(f"{url:<28} {requests:>9} {hits:>7} {misses:>7} {rate:>9.1%}")


def check(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def smoke_checks(summary, metrics_body, log_path, p99_budget):
    overall = summary["overall"]
    check(overall["count"] > 0, f"served {overall['count']} requests")
    check(
        overall["server_errors"] == 0,
        "zero 5xx / transport errors",
    )
    check(overall["errors"] == 0, "zero request errors of any kind")
    warm = summary.get("warm", {})
    budget_ms = p99_budget * 1000
    check(
        warm.get("p99_ms", 0.0) <= budget_ms,
        f"warm p99 {warm.get('p99_ms', 0.0):.1f}ms within {budget_ms:.0f}ms",
    )
    check(
        metrics_body.startswith("# HELP")
        and (
            "caqr_requests_total" in metrics_body  # a compile server
            or "caqr_gateway_http_requests_total" in metrics_body  # a gateway
        ),
        "/v1/metrics answers a Prometheus exposition body",
    )
    if log_path is not None:
        lines = [
            line for line in open(log_path, encoding="utf-8").read().splitlines() if line
        ]
        check(len(lines) >= overall["count"], f"request log holds {len(lines)} records")
        bad_schema = bad_status = 0
        for line in lines:
            record = json.loads(line)
            if any(field not in record for field in RECORD_FIELDS):
                bad_schema += 1
            if record["status"] >= 500:
                bad_status += 1
        check(bad_schema == 0, f"all {len(lines)} log records are schema-complete")
        check(bad_status == 0, "no 5xx recorded in the request log")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", help="target server (self-hosts one when omitted)")
    parser.add_argument("--duration", type=float, default=10.0, help="seconds to run")
    parser.add_argument("--rps", type=float, default=20.0, help="target requests/second across all threads")
    parser.add_argument("--threads", type=int, default=4, help="client threads")
    parser.add_argument("--mix", default=DEFAULT_MIX, help=f"operation weights (default {DEFAULT_MIX})")
    parser.add_argument("--width", type=int, default=5, help="BV circuit width for the workload")
    parser.add_argument("--seed", type=int, default=11, help="mix-picker RNG seed")
    parser.add_argument("--timeout", type=float, default=120.0, help="per-request client timeout")
    parser.add_argument("--p99-budget", type=float, default=2.0, help="smoke gate: max warm p99 seconds")
    parser.add_argument("--smoke", action="store_true", help="short self-checking CI pass")
    parser.add_argument("--json", action="store_true", help="emit the summary as JSON")
    parser.add_argument(
        "--fleet", action="store_true",
        help=f"shard-heavy profile for gateway targets (mix {FLEET_MIX}) "
        "plus a per-backend hit-rate report",
    )
    args = parser.parse_args(argv)

    if args.fleet and args.mix == DEFAULT_MIX:
        args.mix = FLEET_MIX
    if args.smoke:
        args.duration = min(args.duration, 5.0)
        args.rps = min(args.rps, 20.0)

    weights = parse_mix(args.mix)
    mix = Mix(weights, args.width, args.seed)
    recorder = Recorder()

    handles = []
    shared_log = None
    log_path = None
    url = args.url
    try:
        if url is None:
            log_path = os.path.join(
                REPO_ROOT, "benchmarks", "results", f"loadgen-requests-{os.getpid()}.jsonl"
            )
            os.makedirs(os.path.dirname(log_path), exist_ok=True)
            if args.fleet:
                # a real (if miniature) fleet: three backend threads
                # sharing one request log behind a gateway thread
                shared_log = RequestLog(log_path)
                backends = [
                    start_server_thread(
                        service=CompileService(), request_log=shared_log
                    )
                    for _ in range(3)
                ]
                handles.extend(backends)
                gateway = start_gateway_thread(
                    backends=[h.url for h in backends], probe_interval=0.5
                )
                handles.append(gateway)
                url = gateway.url
                print(
                    f"self-hosted fleet: gateway {url} over "
                    f"{[h.url for h in backends]} (request log: {log_path})"
                )
            else:
                handles.append(
                    start_server_thread(
                        service=CompileService(), request_log=log_path
                    )
                )
                url = handles[0].url
                print(f"self-hosted server at {url} (request log: {log_path})")

        prime(url, mix, weights, args.timeout)
        threads_n = max(1, args.threads)
        interval = threads_n / max(args.rps, 0.1)
        deadline = time.monotonic() + args.duration
        threads = [
            threading.Thread(
                target=worker,
                args=(url, mix, recorder, deadline, interval, args.timeout),
                daemon=True,
            )
            for _ in range(threads_n)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(args.duration + args.timeout)
        elapsed = time.monotonic() - started

        observer = RemoteCompileService(url, timeout=args.timeout)
        try:
            metrics_body = observer.metrics()
            stats_payload = observer.stats() if args.fleet else {}
        finally:
            observer.close()
    finally:
        for handle in reversed(handles):  # gateway first, then backends
            handle.stop()
        if shared_log is not None:
            shared_log.close()

    summary = recorder.summary()
    overall = summary["overall"]
    achieved = overall["count"] / elapsed if elapsed > 0 else 0.0
    if args.json:
        print(json.dumps({"elapsed_s": elapsed, "achieved_rps": achieved, "summary": summary}, indent=2, sort_keys=True))
    else:
        print(f"\nloadgen: {overall['count']} ok / {overall['errors']} errors "
              f"in {elapsed:.1f}s ({achieved:.1f} rps achieved)")
        header = f"{'op':<10} {'count':>6} {'errors':>6} {'p50ms':>8} {'p90ms':>8} {'p99ms':>8} {'maxms':>8}"
        print(header)
        print("-" * len(header))
        for op in (*OPERATIONS, "overall"):
            row = summary.get(op)
            if row is None:
                continue
            print(f"{op:<10} {row['count']:>6} {row['errors']:>6} "
                  f"{row['p50_ms']:>8.1f} {row['p90_ms']:>8.1f} "
                  f"{row['p99_ms']:>8.1f} {row['max_ms']:>8.1f}")
        print(f"error rate: {overall['error_rate']:.2%}")

    if args.fleet:
        print_fleet_report(stats_payload)

    if args.smoke:
        smoke_checks(summary, metrics_body, log_path, args.p99_budget)
        print("loadgen smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
