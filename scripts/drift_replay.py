#!/usr/bin/env python
"""CI smoke gate for drift-banded fingerprints.

The acceptance drill for calibration banding, run by the CI
``drift-replay`` job and locally via::

    PYTHONPATH=src python scripts/drift_replay.py

Replays a short seeded calibration-drift series (``bv_5`` on the Mumbai
device profile, 12 snapshots at 1 % per-step volatility) through two
in-process compile services — one keyed by drift-banded backend digests
(``calib_bands=2``), one by exact digests — and asserts the two halves
of the banding contract from ``docs/SERVICE.md``:

1. **hit-rate uplift** — the banded lane's Laplace-smoothed hit uplift
   over the exact lane must be >= 5x (measured 10x at this config:
   9/12 banded hits vs 0/12 exact);
2. **zero decision changes** — on every step the circuit the banded
   lane serves must be identical to a fresh compile of that drifted
   snapshot, in both the structural ``min_depth`` mode and the
   noise-aware ``min_swap`` mode.

Also checks the shard-set contraction that keeps fleet ring keys stable
under drift (banded lane touches < half the shards of the exact lane).
"""

from __future__ import annotations

import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.hardware import get_device  # noqa: E402
from repro.service.driftreplay import replay_drift  # noqa: E402
from repro.workloads import bv_circuit  # noqa: E402

STEPS = 12
VOLATILITY = 0.01
BANDS = 2
DRIFT_SEED = 7
MIN_UPLIFT = 5.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main() -> int:
    circuit = bv_circuit(5)
    backend = get_device("ibm_mumbai")
    for mode in ("min_depth", "min_swap"):
        start = time.perf_counter()
        result = replay_drift(
            circuit,
            backend,
            steps=STEPS,
            volatility=VOLATILITY,
            calib_bands=BANDS,
            seed=DRIFT_SEED,
            mode=mode,
        )
        elapsed = time.perf_counter() - start
        print(f"[{mode}] {result.summary()} ({elapsed:.1f}s)")
        check(
            result.hit_uplift >= MIN_UPLIFT,
            f"[{mode}] banded hit uplift {result.hit_uplift:.1f}x >= {MIN_UPLIFT}x",
        )
        check(
            result.decision_changes == 0,
            f"[{mode}] banding changed zero compile decisions "
            f"({result.decision_changes} changes over {result.steps} steps)",
        )
        check(
            result.banded_shards * 2 <= result.exact_shards,
            f"[{mode}] banded lane touched {result.banded_shards} shards "
            f"vs {result.exact_shards} exact (fleet keys stay put)",
        )
        check(
            result.max_esp_gap == 0.0,
            f"[{mode}] zero ESP decay from band-stale plans "
            f"(max gap {result.max_esp_gap:.3g})",
        )
    print("drift-replay smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
