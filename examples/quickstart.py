"""Quickstart: compress a Bernstein-Vazirani circuit with qubit reuse.

Builds the paper's running example (a BV circuit), asks CaQR whether reuse
helps, compresses the circuit to its 2-qubit floor, and verifies on the
simulator that the compressed dynamic circuit still finds the secret.

Run:  python examples/quickstart.py
"""

from repro.analysis import collect_metrics, format_table
from repro.circuit import to_qasm
from repro.core import QSCaQR, assess_reuse_benefit, sweep_regular
from repro.sim import run_counts
from repro.workloads import bv_circuit, bv_expected_bitstring


def main() -> None:
    secret = [1, 0, 1, 1]
    circuit = bv_circuit(5, secret=secret)
    print(f"Original BV circuit: {circuit.num_qubits} qubits, "
          f"depth {circuit.depth()}")

    # 1. is reuse beneficial for this application?
    report = assess_reuse_benefit(sweep_regular(circuit))
    print(f"Reuse beneficial: {report.beneficial} "
          f"(floor {report.minimum_qubits} qubits, "
          f"saving {report.saving_fraction:.0%})")

    # 2. compress to the floor
    result = QSCaQR().reduce_to(circuit, report.minimum_qubits)
    compressed = result.circuit
    rows = [
        ["original", *collect_metrics(circuit).as_row()],
        ["reused", *collect_metrics(compressed).as_row()],
    ]
    print()
    print(format_table(
        ["circuit", "qubits", "depth", "duration(dt)", "swaps", "2q-gates"],
        rows,
    ))

    # 3. the compressed circuit is a *dynamic* circuit: mid-circuit
    #    measurement + classically controlled X reset every reused wire
    print("\nTransformed circuit (OpenQASM 2):\n")
    print(to_qasm(compressed))

    # 4. verify it still recovers the secret (reusing the unmeasured
    #    ancilla appends a garbage clbit, so project onto the data bits)
    counts = run_counts(compressed, shots=500, seed=1)
    expected = bv_expected_bitstring(5, secret)
    data_counts = {}
    for key, value in counts.items():
        prefix = key[: len(expected)]
        data_counts[prefix] = data_counts.get(prefix, 0) + value
    answer = max(data_counts, key=data_counts.get)
    print(f"Expected secret: {expected}   measured: {answer}   "
          f"({data_counts[answer]}/500 shots)")
    assert answer == expected


if __name__ == "__main__":
    main()
