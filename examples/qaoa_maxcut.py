"""QAOA max-cut with qubit reuse (the paper's commuting-gate application).

Shows the full commuting-circuit pipeline:

1. the graph-coloring bound on minimum qubit usage (paper Fig. 10),
2. the QS-CaQR-commuting qubit/depth tradeoff sweep,
3. an end-to-end COBYLA optimisation comparing the no-reuse baseline to
   the SR-CaQR compiled circuit under device noise (paper Figs. 15-16,
   at a small, fast scale).

Run:  python examples/qaoa_maxcut.py
"""

from repro.apps import best_cut_brute_force, run_qaoa
from repro.apps.qaoa_runner import sr_caqr_factory, transpiled_factory
from repro.analysis import format_series
from repro.core import QSCaQRCommuting
from repro.hardware import ibm_mumbai
from repro.workloads import random_graph


def main() -> None:
    graph = random_graph(8, 0.3, seed=11)
    print(f"Problem: max-cut on a random graph, {graph.number_of_nodes()} "
          f"vertices, {graph.number_of_edges()} edges "
          f"(exact max cut = {best_cut_brute_force(graph)})")

    compiler = QSCaQRCommuting(graph)
    print(f"Graph-coloring qubit floor: {compiler.minimum_qubits()}")

    points = compiler.sweep()
    print()
    print(format_series(
        "QS-CaQR-commuting tradeoff",
        [p.qubits for p in points],
        [p.depth for p in points],
        "qubits", "depth",
    ))

    backend = ibm_mumbai()
    print("\nRunning COBYLA (15 iterations, 128 shots per evaluation) ...")
    baseline = run_qaoa(
        graph, transpiled_factory(graph, backend),
        shots=128, max_iterations=15,
    )
    reused = run_qaoa(
        graph, sr_caqr_factory(graph, backend),
        shots=128, max_iterations=15,
    )
    print(f"  baseline best energy: {baseline.best_energy:.3f} "
          f"({baseline.evaluations} evaluations)")
    print(f"  SR-CaQR  best energy: {reused.best_energy:.3f} "
          f"({reused.evaluations} evaluations)")
    print("\n(lower is better - the reused circuit runs on fewer, better "
          "qubits with fewer SWAPs, so it typically reaches a lower energy)")


if __name__ == "__main__":
    main()
