"""The paper's Fig. 1 / Fig. 4-5 walkthrough on Bernstein-Vazirani.

Part 1 (Fig. 1): an n-qubit BV always compresses to exactly 2 qubits —
we show the whole sweep for BV_10 and check correctness at each point.

Part 2 (Fig. 4/5): on a degree-3 device, the 5-qubit BV star needs SWAPs,
but SR-CaQR's lazy mapping reuses a freed neighbour of the hub and maps it
SWAP-free.

Run:  python examples/bv_reuse.py
"""

from repro.analysis import format_series, format_table
from repro.core import QSCaQR, SRCaQR
from repro.hardware import CouplingMap, generic_backend
from repro.sim import run_counts
from repro.transpiler import transpile
from repro.workloads import bv_circuit


def part1_qubit_saving() -> None:
    print("=" * 64)
    print("Part 1 - QS-CaQR on BV_10 (paper Fig. 1: n-qubit BV -> 2 qubits)")
    print("=" * 64)
    circuit = bv_circuit(10)
    points = QSCaQR().sweep(circuit)
    print(format_series(
        "BV_10 tradeoff",
        [p.qubits for p in points],
        [p.depth for p in points],
        "qubits", "logical depth",
    ))
    final = points[-1]
    assert final.qubits == 2, "BV must reach the 2-qubit floor"
    counts = run_counts(final.circuit, shots=300, seed=2)
    answer = max(counts, key=counts.get)[:9]
    print(f"\n2-qubit BV_10 output: {answer} (expected 111111111)")
    saving = 1 - final.qubits / 10
    print(f"Qubit saving: {saving:.0%} (paper reports 60% for BV_5, "
          f"80% at BV_10)")


def part2_swap_reduction() -> None:
    print()
    print("=" * 64)
    print("Part 2 - SR-CaQR on the paper's Fig. 4 architecture")
    print("=" * 64)
    # Fig. 4(a): five qubits, max degree 3 -> the BV_5 star cannot embed
    coupling = CouplingMap(5, [(0, 1), (1, 2), (1, 3), (3, 4)])
    backend = generic_backend(coupling, seed=3)
    circuit = bv_circuit(5)

    baseline = transpile(circuit, backend, optimization_level=3, seed=5)
    reused = SRCaQR(backend).run(circuit)
    print(format_table(
        ["compiler", "swaps", "qubits used", "reuses", "depth"],
        [
            ["baseline (no reuse)", baseline.swap_count,
             baseline.qubits_used, 0, baseline.depth],
            ["SR-CaQR", reused.swap_count, reused.qubits_used,
             reused.reuse_count, reused.depth],
        ],
    ))
    assert reused.swap_count == 0, "reuse should eliminate all SWAPs here"
    counts = run_counts(reused.circuit.compacted(), shots=200, seed=6)
    print(f"\nSR-CaQR output (data bits): "
          f"{max(counts, key=counts.get)[:4]} (expected 1111)")


if __name__ == "__main__":
    part1_qubit_saving()
    part2_swap_reduction()
