"""Explore the qubit / depth / SWAP tradeoff across benchmark circuits.

For each regular benchmark the explorer prints the hardware-mapped sweep
(the data behind paper Fig. 13 and Table 1) plus the reuse-benefit verdict,
then shows the three user-selectable operating points: baseline, maximal
reuse, and minimal depth.

Run:  python examples/tradeoff_explorer.py
"""

from repro.core import assess_reuse_benefit, select_point, sweep_regular
from repro.analysis import format_percent, format_table
from repro.hardware import ibm_mumbai
from repro.workloads import regular_benchmark

BENCHMARKS = ["bv_10", "xor_5", "4mod5", "system_9"]


def explore(name: str) -> None:
    backend = ibm_mumbai()
    circuit = regular_benchmark(name)
    points = sweep_regular(circuit, backend=backend)

    print("=" * 70)
    print(f"{name}: {circuit.num_qubits} qubits, "
          f"{circuit.two_qubit_gate_count()} two-qubit gates")
    print("=" * 70)
    print(format_table(
        ["qubits", "logical depth", "compiled depth", "duration(dt)", "swaps"],
        [
            [p.qubits, p.logical_depth, p.compiled_depth,
             p.compiled_duration_dt, p.swap_count]
            for p in points
        ],
    ))

    report = assess_reuse_benefit(points)
    print(f"\nbenefit: {report.beneficial}  "
          f"(max saving {format_percent(report.saving_fraction)}, "
          f"knee at {report.knee_qubits} qubits with "
          f"{format_percent(report.knee_depth_overhead)} depth overhead)")

    rows = []
    for mode in ("baseline", "max_reuse", "min_depth"):
        point = select_point(points, mode)
        rows.append([mode, point.qubits, point.compiled_depth, point.swap_count])
    print()
    print(format_table(["selection", "qubits", "depth", "swaps"], rows))
    print()


if __name__ == "__main__":
    for benchmark in BENCHMARKS:
        explore(benchmark)
