"""One-call compilation with ``caqr_compile`` + circuit inspection.

Shows the user-facing workflow:

1. compile a regular circuit to a hard qubit budget and draw the result;
2. hand a *circuit-shaped* QAOA program to the compiler and watch the
   auto-dispatcher route it to the commuting-gate pipeline;
3. snapshot the backend (calibration + coupling) to JSON so the run is
   exactly repeatable.

Run:  python examples/compile_and_inspect.py
"""

from repro import caqr_compile
from repro.hardware import backend_from_json, backend_to_json, ibm_mumbai
from repro.workloads import bv_circuit, qaoa_maxcut_circuit, random_graph


def part1_budgeted_compile() -> None:
    print("=" * 68)
    print("1. Compile BV_6 to a 2-qubit budget and inspect the circuit")
    print("=" * 68)
    report = caqr_compile(bv_circuit(6), mode="qubit_budget", qubit_limit=2)
    print(f"qubits: 6 -> {report.metrics.qubits_used} "
          f"({report.qubit_saving:.0%} saving), "
          f"depth {report.metrics.depth}, "
          f"{report.metrics.reuse_resets} reuse resets\n")
    print(report.circuit.draw(max_width=100))


def part2_auto_dispatch() -> None:
    print()
    print("=" * 68)
    print("2. A QAOA circuit is recognised and dispatched to the")
    print("   commuting-gate pipeline automatically")
    print("=" * 68)
    graph = random_graph(8, 0.3, seed=5)
    circuit = qaoa_maxcut_circuit(graph, gammas=[0.7], betas=[0.35])
    auto = caqr_compile(circuit, mode="max_reuse")
    frozen = caqr_compile(circuit, mode="max_reuse", auto_commuting=False)
    print(f"as regular circuit (gate order fixed): "
          f"{frozen.metrics.qubits_used} qubits")
    print(f"auto-dispatched (commuting freedom):   "
          f"{auto.metrics.qubits_used} qubits")


def part3_backend_snapshot() -> None:
    print()
    print("=" * 68)
    print("3. Snapshot the device so the compilation is repeatable")
    print("=" * 68)
    backend = ibm_mumbai()
    snapshot = backend_to_json(backend)
    restored = backend_from_json(snapshot)
    a = caqr_compile(bv_circuit(8), backend=backend, mode="min_swap")
    b = caqr_compile(bv_circuit(8), backend=restored, mode="min_swap")
    print(f"snapshot size: {len(snapshot)} bytes")
    print(f"original backend : {a.metrics.swap_count} swaps, "
          f"{a.metrics.duration_dt} dt")
    print(f"restored backend : {b.metrics.swap_count} swaps, "
          f"{b.metrics.duration_dt} dt")
    assert a.metrics.swap_count == b.metrics.swap_count


if __name__ == "__main__":
    part1_budgeted_compile()
    part2_auto_dispatch()
    part3_backend_snapshot()
