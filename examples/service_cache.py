"""The compile service: cached and batched ``caqr_compile``.

Shows the production-facing workflow (the service-side sibling of
``examples/compile_and_inspect.py``):

1. compile the same circuit twice through the cache and watch the warm
   hit skip QS/SR entirely;
2. submit a batch with duplicate members and watch them fold onto one
   compilation, results in input order;
3. persist the cache to disk so a *new process* starts warm, and show
   that calibration drift invalidates the key.

Run:  python examples/service_cache.py
"""

import tempfile
import time

from repro.hardware import ibm_mumbai
from repro.service import CompileRequest, CompileService
from repro.workloads import bv_circuit


def part1_warm_hits() -> None:
    print("=" * 68)
    print("1. Warm cache hits skip compilation")
    print("=" * 68)
    service = CompileService()
    circuit = bv_circuit(24)
    start = time.perf_counter()
    cold = service.compile(circuit)
    t_cold = time.perf_counter() - start
    start = time.perf_counter()
    warm = service.compile(circuit)
    t_warm = time.perf_counter() - start
    assert warm.circuit.data == cold.circuit.data
    print(f"cold: {t_cold * 1000:7.1f} ms   (from_cache={cold.from_cache})")
    print(f"warm: {t_warm * 1000:7.1f} ms   (from_cache={warm.from_cache})")
    print(f"speedup: {t_cold / t_warm:.0f}x — report is field-identical\n")


def part2_batch_dedup() -> None:
    print("=" * 68)
    print("2. Batches fold duplicates and keep input order")
    print("=" * 68)
    service = CompileService()
    widths = [10, 12, 10, 14, 12, 10]
    reports = service.compile_batch(
        [CompileRequest(bv_circuit(n)) for n in widths]
    )
    print("request widths: ", widths)
    print("report widths:  ", [r.circuit.num_qubits for r in reports])
    print("from_cache:     ", [r.from_cache for r in reports])
    stats = service.stats
    print(f"{stats.counters['batch_unique']} compiles served "
          f"{stats.counters['batch_requests']} requests "
          f"({stats.counters['dedup_folds']} folded)\n")


def part3_persistence_and_invalidation() -> None:
    print("=" * 68)
    print("3. Disk persistence + calibration-drift invalidation")
    print("=" * 68)
    backend = ibm_mumbai()
    circuit = bv_circuit(8)
    with tempfile.TemporaryDirectory() as cache_dir:
        CompileService(cache_dir=cache_dir).compile(
            circuit, backend=backend, mode="min_swap"
        )
        # a brand-new service (think: a new process) starts warm
        fresh = CompileService(cache_dir=cache_dir)
        report = fresh.compile(circuit, backend=backend, mode="min_swap")
        print(f"new service, same snapshot : from_cache={report.from_cache}")
        # drift one CX error: the backend digest — and the key — change
        edge = next(iter(backend.calibration.cx_error))
        backend.calibration.cx_error[edge] *= 1.05
        drifted = fresh.compile(circuit, backend=backend, mode="min_swap")
        print(f"after calibration drift    : from_cache={drifted.from_cache}")
        print(f"stats: {fresh.stats.summary()}")


if __name__ == "__main__":
    part1_warm_hits()
    part2_batch_dedup()
    part3_persistence_and_invalidation()
