"""Portfolio compilation: race every engine, trust the exact oracle.

Shows the premium compile path (``docs/PORTFOLIO.md``):

1. a portfolio compile on BV-5 — the exact branch-and-bound tier wins
   the qubits objective with a *proven* optimum (gap 0);
2. the objective changing the winner on the same circuit — depth picks
   the shallow wide point, qubits the deep narrow one;
3. the anytime budget — a starved oracle reports best-so-far with
   ``optimal=False`` and the greedy engines win the race;
4. win-rate stats accumulating on the service so the portfolio
   self-tunes its pool submission order.

Run:  python examples/portfolio_compile.py
"""

from repro.circuit.circuit import QuantumCircuit
from repro.compile_api import caqr_compile
from repro.service import PortfolioCompileService
from repro.workloads import bv_circuit


def part1_oracle_wins() -> None:
    print("=" * 68)
    print("1. The exact tier proves the optimum on BV-5")
    print("=" * 68)
    report = caqr_compile(
        bv_circuit(5), strategy="portfolio", objective="qubits"
    )
    print(f"winner:        {report.strategy}")
    print(f"qubits used:   {report.metrics.qubits_used}")
    print(f"optimality gap: {report.optimality_gap} "
          f"(oracle optimal: {report.exact_optimal})")
    print("per-strategy timings:")
    for name in sorted(report.strategy_timings):
        print(f"  {name:<14} {report.strategy_timings[name] * 1000:8.1f} ms")
    print()


def part2_objective_changes_winner() -> None:
    print("=" * 68)
    print("2. The objective picks a different winner")
    print("=" * 68)
    circuit = bv_circuit(4)
    for objective in ("qubits", "depth"):
        report = caqr_compile(
            circuit, strategy="portfolio", objective=objective
        )
        print(f"objective={objective:<7} -> winner={report.strategy:<10} "
              f"qubits={report.metrics.qubits_used} "
              f"depth={report.metrics.depth}")
    print()


def _reuse_chain(length: int) -> QuantumCircuit:
    circuit = QuantumCircuit(length, length)
    for i in range(length - 1):
        circuit.cx(i, i + 1)
    for i in range(length):
        circuit.measure(i, i)
    return circuit


def part3_anytime_budget() -> None:
    print("=" * 68)
    print("3. A starved oracle falls back to the greedy engines")
    print("=" * 68)
    service = PortfolioCompileService(exact_max_nodes=2)
    report = service.compile(
        _reuse_chain(8), mode="max_reuse", objective="qubits"
    )
    print(f"winner:         {report.strategy} "
          f"({report.metrics.qubits_used} qubits)")
    print(f"oracle optimal: {report.exact_optimal} "
          f"(budget cut the search short)")
    print(f"optimality gap: {report.optimality_gap} "
          f"(an unproven bound makes no gap claim)")
    print()


def part4_win_rates() -> None:
    print("=" * 68)
    print("4. Win-rate stats accumulate on the service")
    print("=" * 68)
    service = PortfolioCompileService()
    for width in (4, 5, 6):
        service.compile(bv_circuit(width), objective="qubits")
    for name, count in sorted(service.stats.counters.items()):
        if name.startswith(("portfolio_compiles", "portfolio_wins",
                            "portfolio_oracle")):
            print(f"  {name:<32} {count}")
    print()


if __name__ == "__main__":
    part1_oracle_wins()
    part2_objective_changes_winner()
    part3_anytime_budget()
    part4_win_rates()
