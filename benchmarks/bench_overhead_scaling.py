"""Paper §3.4 (overhead analysis): compiler runtime scaling.

The paper bounds QS/SR-CaQR at O(k·n^3) for regular circuits (k qubits,
n gates) and notes the worst case is not hit in practice.  This bench
measures wall-clock compile time across growing BV and QAOA instances and
checks the growth stays polynomial and small (sub-second up to the
paper's benchmark sizes).
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR, QSCaQRCommuting, SRCaQR
from repro.hardware import ibm_mumbai
from repro.workloads import bv_circuit, random_graph

BV_SIZES = [4, 6, 8, 10, 12, 14]
QAOA_SIZES = [6, 10, 14, 18]


def _measure():
    backend = ibm_mumbai()
    rows = []
    for n in BV_SIZES:
        circuit = bv_circuit(n)
        start = time.perf_counter()
        QSCaQR().sweep(circuit)
        qs_time = time.perf_counter() - start
        start = time.perf_counter()
        SRCaQR(backend).run(circuit, trials=1, qs_assist=False)
        sr_time = time.perf_counter() - start
        rows.append(
            ["bv", n, circuit.size(), round(qs_time * 1000, 1), round(sr_time * 1000, 1)]
        )
    for n in QAOA_SIZES:
        graph = random_graph(n, 0.3, seed=7)
        compiler = QSCaQRCommuting(graph)
        start = time.perf_counter()
        compiler.sweep()
        qs_time = time.perf_counter() - start
        rows.append(
            ["qaoa", n, graph.number_of_edges(), round(qs_time * 1000, 1), "-"]
        )
    return rows


def test_overhead_scaling(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "overhead_scaling",
        format_table(
            ["family", "n", "gates/edges", "QS sweep (ms)", "SR run (ms)"],
            rows,
            title="Paper §3.4: compile-time scaling (polynomial, sub-second "
            "at benchmark sizes)",
        ),
    )
    bv_rows = [row for row in rows if row[0] == "bv"]
    # polynomial growth check: doubling n must not blow past n^4 scaling
    first, last = bv_rows[0], bv_rows[-1]
    size_ratio = last[1] / first[1]
    time_ratio = max(last[3], 1.0) / max(first[3], 1.0)
    assert time_ratio <= size_ratio**4.5, (time_ratio, size_ratio)
    # and the paper-size instances stay interactive
    assert all(row[3] < 30_000 for row in rows), rows