"""Portfolio racing vs. the single-strategy path on benchmark workloads.

The claim (ISSUE 6 / docs/PORTFOLIO.md): racing every applicable engine
and keeping the best result under a declared objective is never worse
than the shipped single-strategy ``caqr_compile`` on that objective —
the greedy path is itself a lane in the race.  Measured on bv16 and the
QAOA-16 graph for both the ``qubits`` and ``depth`` objectives (the
exact tier sits out at 16 qubits — its width gate is 10 — so any wins
here come from the heuristic variants).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_portfolio.py``.
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.compile_api import caqr_compile
from repro.service import PortfolioCompileService
from repro.workloads import bv_circuit, random_graph

# objective -> the single-strategy mode that optimises the same thing
OBJECTIVE_MODES = {"qubits": "max_reuse", "depth": "min_depth"}

WORKLOADS = [
    ("bv16", lambda: bv_circuit(16)),
    ("qaoa16-0.3", lambda: random_graph(16, 0.3, seed=7)),
]


def _objective_value(report, objective):
    if objective == "qubits":
        return report.metrics.qubits_used
    return report.metrics.depth


def _measure():
    rows = []
    service = PortfolioCompileService()
    for name, build in WORKLOADS:
        target = build()
        for objective, mode in OBJECTIVE_MODES.items():
            start = time.perf_counter()
            single = caqr_compile(target, mode=mode)
            t_single = time.perf_counter() - start
            start = time.perf_counter()
            raced = service.compile(target, mode=mode, objective=objective)
            t_race = time.perf_counter() - start
            single_value = _objective_value(single, objective)
            raced_value = _objective_value(raced, objective)
            assert raced_value <= single_value, (
                f"{name}/{objective}: portfolio {raced_value} worse than "
                f"single-strategy {single_value}"
            )
            rows.append(
                [
                    name,
                    objective,
                    raced.strategy,
                    raced_value,
                    single_value,
                    round(t_race, 3),
                    round(t_single, 3),
                ]
            )
    return rows, service.stats


def test_portfolio_never_worse(benchmark):
    rows, stats = once(benchmark, _measure)
    table = format_table(
        [
            "workload",
            "objective",
            "winner",
            "portfolio",
            "single",
            "race_s",
            "single_s",
        ],
        rows,
    )
    emit("portfolio", table + "\n\nstats: " + stats.summary())
