"""Paper Figs. 4-5: the SWAP-relief mechanism on the 5-qubit BV star.

The BV_5 interaction graph is a degree-4 star; the paper's 5-qubit
architecture (Fig. 4a) has maximum degree 3, so the no-reuse circuit
*must* insert SWAPs.  With one qubit reuse the interaction graph's hub
degree drops to 3 and the circuit embeds SWAP-free (Fig. 5c).
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import SRCaQR
from repro.hardware import CouplingMap, generic_backend
from repro.transpiler import transpile
from repro.workloads import bv_circuit


def _measure():
    # Fig. 4(a): five qubits, max degree 3
    coupling = CouplingMap(5, [(0, 1), (1, 2), (1, 3), (3, 4)])
    backend = generic_backend(coupling, seed=3)
    circuit = bv_circuit(5)
    hub_degree = max(dict(circuit.interaction_graph().degree()).values())
    baseline = transpile(circuit, backend, optimization_level=3, seed=5)
    reused = SRCaQR(backend).run(circuit)
    return hub_degree, coupling.max_degree(), baseline, reused


def test_fig05_swap_free_bv(benchmark):
    hub_degree, device_degree, baseline, reused = once(benchmark, _measure)
    rows = [
        ["no reuse (Qiskit-L3 equivalent)", 5, baseline.swap_count, baseline.depth],
        ["SR-CaQR (1+ reuse)", reused.qubits_used, reused.swap_count, reused.depth],
    ]
    emit(
        "fig05_swap_free_bv",
        format_table(
            ["compiler", "qubits used", "swaps", "depth"],
            rows,
            title=f"Figs. 4-5: BV_5 star (hub degree {hub_degree}) on a "
            f"max-degree-{device_degree} device",
        ),
    )
    assert hub_degree == 4 and device_degree == 3
    assert baseline.swap_count >= 1      # the star cannot embed directly
    assert reused.swap_count == 0        # reuse removes the pressure
    assert reused.qubits_used < 5