"""Ablation: reset idiom used at every reuse point.

Compares the paper's optimised measure + c_if(X) reset against the naive
measure + built-in reset across the reuse-heavy benchmarks, reporting the
duration of the maximally-reused circuit under each style.

Expected: the c_if style is strictly faster wherever at least one reuse
happened, with the gap growing with the number of reuses (each reuse
saves 16,712 dt).
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR
from repro.workloads import regular_benchmark

BENCHMARKS = ["bv_10", "xor_5", "system_9", "multiply_13", "cc_10"]


def _rows():
    rows = []
    for name in BENCHMARKS:
        circuit = regular_benchmark(name)
        cif = QSCaQR(reset_style="cif").sweep(circuit)[-1]
        builtin = QSCaQR(reset_style="builtin").sweep(circuit)[-1]
        reuses = len(cif.pairs)
        rows.append(
            [
                name,
                reuses,
                cif.duration_dt,
                builtin.duration_dt,
                builtin.duration_dt - cif.duration_dt,
            ]
        )
    return rows


def test_ablation_reset_style(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_reset_style",
        format_table(
            ["benchmark", "reuses", "c_if duration", "builtin duration", "saved (dt)"],
            rows,
            title="Ablation: measure+c_if(X) vs measure+reset at maximal reuse",
        ),
    )
    for name, reuses, cif_dt, builtin_dt, _saved in rows:
        if reuses > 0:
            assert cif_dt < builtin_dt, name
