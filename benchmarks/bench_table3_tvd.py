"""Paper Table 3: TVD on the (simulated) real machine — baseline vs SR-CaQR.

For each benchmark the ideal output distribution comes from a noiseless
run of the logical circuit; the baseline is the L3-transpiled circuit and
the contender the SR-CaQR-compiled circuit, both sampled under the
synthetic Mumbai noise model (per-link CX errors + readout errors).

Shape check: SR-CaQR improves (lowers) TVD on at least two of the three
benchmarks and on the mean, mirroring the paper's Table 3 direction
(0.76->0.61, 0.64->0.48, 0.61->0.44).  multiply_13 sits in our noise
model's saturated regime (TVD ~0.87) where baseline and SR tie within
shot noise — recorded as a deviation in EXPERIMENTS.md.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import SRCaQR
from repro.hardware import ibm_mumbai
from repro.sim import run_counts, run_physical_counts, total_variation_distance
from repro.transpiler import transpile
from repro.workloads import regular_benchmark

BENCHMARKS = ["bv_10", "multiply_13", "cc_10"]
SHOTS = 384


def _project(counts, width):
    out = {}
    for key, value in counts.items():
        out[key[:width]] = out.get(key[:width], 0) + value
    return out


def _rows():
    backend = ibm_mumbai()
    rows = []
    for name in BENCHMARKS:
        circuit = regular_benchmark(name)
        width = circuit.num_clbits
        ideal = _project(run_counts(circuit, shots=2048, seed=3), width)

        baseline = transpile(circuit, backend, optimization_level=3, seed=23)
        baseline_counts = run_physical_counts(
            baseline.circuit, backend, shots=SHOTS, seed=5, relaxation=False
        )
        sr = SRCaQR(backend).run(circuit, objective="esp")
        sr_counts = run_physical_counts(
            sr.circuit, backend, shots=SHOTS, seed=5, relaxation=False
        )
        tvd_baseline = total_variation_distance(
            _project(baseline_counts, width), ideal
        )
        tvd_sr = total_variation_distance(_project(sr_counts, width), ideal)
        rows.append(
            [
                name,
                round(tvd_baseline, 3),
                round(tvd_sr, 3),
                baseline.swap_count,
                sr.swap_count,
            ]
        )
    return rows


def test_table3_tvd(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "table3_tvd",
        format_table(
            ["benchmark", "TVD baseline", "TVD SR-CaQR", "swaps base", "swaps SR"],
            rows,
            title="Table 3: TVD under Mumbai noise (lower is better; paper: "
            "SR-CaQR improves all three)",
        ),
    )
    improved = sum(1 for row in rows if row[2] < row[1])
    mean_baseline = sum(row[1] for row in rows) / len(rows)
    mean_sr = sum(row[2] for row in rows) / len(rows)
    assert improved >= 2, rows
    assert mean_sr < mean_baseline, rows
