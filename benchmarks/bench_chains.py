"""Chain-engine quality gates: width vs. greedy QS, plus the dual-register win.

Three claims (ISSUE 10 / docs/CHAINS.md):

* the beam-searched :class:`~repro.core.chains.ChainReuse` is **never
  wider** than the greedy QS sweep on benchmark workloads (bv16 and
  QAOA-16) — the greedy guard makes this a hard invariant;
* on at least one pinned workload the chain engine is **strictly
  narrower** than both greedy QS evaluation engines — joint chain
  scoring finds plans one-pair-at-a-time greed cannot;
* in the trapped-ion regime (all-to-all ``iontrap32``), the
  dual-register cost model inserts **fewer mid-circuit measure/reset
  operations** than the generic width-first model on a pinned circuit
  where the two genuinely disagree.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_chains.py``.
"""

import time

import networkx as nx
from conftest import emit, once

from repro.analysis import format_table
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.random import random_circuit
from repro.compile_api import caqr_compile
from repro.core import ChainReuse, QSCaQR
from repro.hardware.topologies import get_device
from repro.workloads import bv_circuit, qaoa_maxcut_circuit, random_graph

WORKLOADS = [
    ("bv16", lambda: bv_circuit(16)),
    ("qaoa16-0.3", lambda: qaoa_maxcut_circuit(random_graph(16, 0.3, seed=7))),
]

# joint chain scoring beats one-pair-at-a-time greed on these
STRICT_WINS = [
    (
        "qaoa-tree15",
        lambda: qaoa_maxcut_circuit(nx.balanced_tree(2, 3)),
        4,  # chain width
        5,  # both greedy QS engines
    ),
    (
        "random-197",
        lambda: random_circuit(
            8, num_gates=13, seed=197, two_qubit_fraction=0.65, measure=True
        ),
        3,
        4,
    ),
]


def _mixed_ladder(n: int) -> QuantumCircuit:
    """CX chain with only the even qubits measured: half the reuse
    windows end in a terminal measurement, so the generic and
    dual-register cost models pick different plans."""
    circuit = QuantumCircuit(n, n // 2)
    for i in range(n - 1):
        circuit.cx(i, i + 1)
    for slot, i in enumerate(range(0, n, 2)):
        circuit.measure(i, slot)
    return circuit


def _measure():
    rows = []
    for name, build in WORKLOADS:
        circuit = build()
        start = time.perf_counter()
        chain = ChainReuse().run(circuit)
        t_chain = time.perf_counter() - start
        start = time.perf_counter()
        greedy = QSCaQR(parallel=False).minimum_qubits(circuit)
        t_greedy = time.perf_counter() - start
        assert chain.qubits <= greedy, (
            f"{name}: chain {chain.qubits} wider than greedy {greedy}"
        )
        rows.append(
            [
                name,
                circuit.num_qubits,
                chain.qubits,
                greedy,
                chain.floor,
                round(t_chain, 3),
                round(t_greedy, 3),
            ]
        )
    for name, build, chain_width, greedy_width in STRICT_WINS:
        circuit = build()
        start = time.perf_counter()
        chain = ChainReuse().run(circuit)
        t_chain = time.perf_counter() - start
        assert chain.qubits == chain_width, (
            f"{name}: chain reached {chain.qubits}, pinned {chain_width}"
        )
        assert not chain.from_greedy, f"{name}: win must come from the beam"
        for incremental in (True, False):
            start = time.perf_counter()
            greedy = QSCaQR(
                incremental=incremental, parallel=False
            ).minimum_qubits(circuit)
            t_greedy = time.perf_counter() - start
            assert greedy == greedy_width, (
                f"{name} incremental={incremental}: greedy reached "
                f"{greedy}, pinned {greedy_width}"
            )
        rows.append(
            [
                name,
                circuit.num_qubits,
                chain.qubits,
                greedy_width,
                chain.floor,
                round(t_chain, 3),
                round(t_greedy, 3),
            ]
        )
    return rows


def _measure_dual():
    """The iontrap32 regime: routing free, measure/reset dominant."""
    circuit = _mixed_ladder(8)
    generic = ChainReuse().run(circuit)
    dual = ChainReuse(
        dual_register=True, register_budget=generic.qubits + 2
    ).run(circuit)
    assert dual.feasible
    assert dual.plan.mid_circuit_ops < generic.plan.mid_circuit_ops, (
        f"dual-register inserted {dual.plan.mid_circuit_ops} mid-circuit "
        f"ops, generic {generic.plan.mid_circuit_ops} — no trapped-ion win"
    )
    assert (generic.qubits, generic.plan.mid_circuit_ops) == (2, 9)
    assert (dual.qubits, dual.plan.mid_circuit_ops) == (4, 5)
    # end-to-end: compiling onto the all-to-all iontrap32 profile flips
    # caqr_compile's chain pipeline into dual-register mode by itself
    logical = caqr_compile(circuit, strategy="chain")
    routed = caqr_compile(
        circuit,
        strategy="chain",
        backend=get_device("iontrap32"),
        mode="min_swap",
    )

    def _mid_ops(report):
        counters = report.chain_stats.counters
        return counters["inserted_measures"] + counters["inserted_resets"]

    assert _mid_ops(routed) < _mid_ops(logical), (
        f"iontrap32 chain compile inserted {_mid_ops(routed)} mid-circuit "
        f"ops, backend-less compile {_mid_ops(logical)}"
    )
    return [
        ["generic", generic.qubits, generic.plan.mid_circuit_ops],
        ["dual-register", dual.qubits, dual.plan.mid_circuit_ops],
        ["caqr_compile (no backend)", logical.metrics.qubits_used, _mid_ops(logical)],
        ["caqr_compile (iontrap32)", routed.metrics.qubits_used, _mid_ops(routed)],
    ]


def test_chain_never_wider_with_strict_wins(benchmark):
    rows = once(benchmark, _measure)
    table = format_table(
        ["workload", "input", "chain", "greedy", "floor", "chain_s", "greedy_s"],
        rows,
    )
    emit("chains", table)


def test_dual_register_reduces_mid_circuit_ops(benchmark):
    rows = once(benchmark, _measure_dual)
    table = format_table(["cost model", "qubits", "mid_circuit_ops"], rows)
    emit("chains_dual", table)
