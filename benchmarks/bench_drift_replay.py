"""Drift-banded fingerprints: hit-rate uplift with zero decision changes.

The banding claim (ISSUE 9 / docs/BACKENDS.md): quantising calibration
values into coarse log-scale bands before digesting keeps the compile
cache warm across day-to-day calibration drift *without ever changing a
compile decision* — a banded warm hit always equals a fresh compile of
the drifted snapshot.  This bench replays longer drift series than the
CI smoke (24 steps, two workloads, both the structural ``min_depth``
mode and the noise-aware ``min_swap`` mode) and asserts:

- Laplace-smoothed hit uplift >= 5x over exact digests on every row;
- zero decision changes on every row;
- zero ESP decay from serving band-stale plans.

Horizons differ by mode, matching the guarantee docs/SERVICE.md states:
structural modes (``min_depth``) make calibration-free decisions, so
the zero-change gate holds at any horizon (24 steps here); the
noise-aware ``min_swap`` placement re-reads error rates on every fresh
compile, so its gate holds within the validated drift envelope (12
steps at 1 % volatility — beyond that, accumulated *in-band* drift can
legitimately flip close placement calls, which the ESP-decay column
would then quantify).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_drift_replay.py``.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.hardware import get_device
from repro.service.driftreplay import replay_drift
from repro.workloads import bv_circuit

MIN_UPLIFT = 5.0
LONG_STEPS = 24  # structural modes: decision gate holds at any horizon
ENVELOPE_STEPS = 12  # noise-aware mode: the validated drift envelope
VOLATILITY = 0.01
BANDS = 2
DRIFT_SEED = 7

RUNS = [
    ("bv5/mumbai", lambda: bv_circuit(5), "ibm_mumbai", "min_depth", LONG_STEPS),
    ("bv5/mumbai", lambda: bv_circuit(5), "ibm_mumbai", "min_swap", ENVELOPE_STEPS),
    ("bv8/grid36", lambda: bv_circuit(8), "grid36", "min_depth", LONG_STEPS),
]


def _measure():
    rows = []
    for name, build, device, mode, steps in RUNS:
        result = replay_drift(
            build(),
            get_device(device),
            steps=steps,
            volatility=VOLATILITY,
            calib_bands=BANDS,
            seed=DRIFT_SEED,
            mode=mode,
        )
        rows.append((name, mode, result))
    return rows


def test_drift_replay_uplift(benchmark):
    rows = once(benchmark, _measure)
    table = format_table(
        [
            "workload",
            "mode",
            "steps",
            "banded",
            "exact",
            "uplift",
            "changes",
            "shards b/e",
            "esp gap max",
        ],
        [
            [
                name,
                mode,
                r.steps,
                f"{r.banded_hits}/{r.banded_hits + r.banded_misses}",
                f"{r.exact_hits}/{r.exact_hits + r.exact_misses}",
                f"{r.hit_uplift:.1f}x",
                r.decision_changes,
                f"{r.banded_shards}/{r.exact_shards}",
                f"{r.max_esp_gap:.3g}",
            ]
            for name, mode, r in rows
        ],
    )
    emit("drift_replay", table)
    for name, mode, result in rows:
        assert result.hit_uplift >= MIN_UPLIFT, (
            f"{name} [{mode}]: banded uplift only {result.hit_uplift:.1f}x "
            f"(need >= {MIN_UPLIFT}x)"
        )
        assert result.decision_changes == 0, (
            f"{name} [{mode}]: banding changed {result.decision_changes} "
            f"compile decisions (must be 0)"
        )
        assert result.max_esp_gap == 0.0, (
            f"{name} [{mode}]: band-stale plans decayed ESP by "
            f"{result.max_esp_gap:.3g}"
        )
