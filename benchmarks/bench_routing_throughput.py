"""Routing stack: end-to-end SR-CaQR throughput, old arms vs. new.

The tentpole claim: the vectorised scoring kernels, the shared distance
caches, the incremental slack scheduler, and the bitset reuse-potential
lookahead rebuild the router for throughput *without changing a single
output circuit*.  Both arms therefore compile the same workloads and the
results are pinned — swap count, reuse count, qubit usage, duration, and
a fingerprint of the full instruction stream — against the values the
pre-optimisation router produced.

Arms:

* **legacy** — the from-scratch reference scheduler
  (``SRCaQR(incremental=False)``) with the networkx lookahead kernel
  (``CAQR_LOOKAHEAD_KERNEL=nx``): the pre-PR hot path.
* **optimized** — the defaults: incremental scheduler + bitset kernel.
* **parallel** — the optimized router with the trial grid fanned over the
  process pool, to pin the seed-keyed reduction against the same
  baselines.

Gate: >= 3x end-to-end on bv(40) at trials=3 with QS assistance.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_routing_throughput.py``.
"""

import hashlib
import os
import time

from conftest import emit, once

from repro.analysis import format_table
from repro.core import SRCaQR, SRCaQRCommuting
from repro.hardware import generic_backend, grid, ibm_mumbai
from repro.workloads import bv_circuit, random_graph

# acceptance bar (measured ~7x for bv40 and ~5x for QAOA-64 in CI-class
# containers; 3x leaves margin)
MIN_SPEEDUP = 3.0
TRIALS = 3

# pinned pre-PR compilation results: the optimisations must not move them
BV40_BASELINE = {
    "swaps": 0,
    "reuses": 36,
    "qubits": 4,
    "duration": 244816,
    "fingerprint": "d08e645574d1cacd",
}
QAOA64_BASELINE = {
    "swaps": 342,
    "qubits": 49,
    "duration": 863255,
    "fingerprint": "2268ee16e5ec5edd",
}


def _fingerprint(circuit):
    payload = "\n".join(map(str, circuit.data)).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _bv40_run(incremental, kernel, parallel=False):
    os.environ["CAQR_LOOKAHEAD_KERNEL"] = kernel
    try:
        router = SRCaQR(
            ibm_mumbai(),
            incremental=incremental,
            parallel=parallel,
            max_workers=2 if parallel else None,
        )
        start = time.perf_counter()
        result = router.run(bv_circuit(40), trials=TRIALS, qs_assist=True)
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("CAQR_LOOKAHEAD_KERNEL", None)
    observed = {
        "swaps": result.swap_count,
        "reuses": result.reuse_count,
        "qubits": result.qubits_used,
        "duration": result.duration_dt,
        "fingerprint": _fingerprint(result.circuit),
    }
    return elapsed, observed, router.stats


def _qaoa64_run(incremental, kernel):
    os.environ["CAQR_LOOKAHEAD_KERNEL"] = kernel
    try:
        backend = generic_backend(grid(8, 8), seed=5)
        compiler = SRCaQRCommuting(backend, incremental=incremental, parallel=False)
        start = time.perf_counter()
        result = compiler.run(random_graph(64, 0.08, seed=7))
        elapsed = time.perf_counter() - start
    finally:
        os.environ.pop("CAQR_LOOKAHEAD_KERNEL", None)
    observed = {
        "swaps": result.swap_count,
        "qubits": result.qubits_used,
        "duration": result.duration_dt,
        "fingerprint": _fingerprint(result.circuit),
    }
    return elapsed, observed, compiler.stats


def _measure():
    # bv(40): the paper's headline swap-free workload, QS-assisted
    t_legacy, legacy, _ = _bv40_run(incremental=False, kernel="nx")
    t_fast, fast, fast_stats = _bv40_run(incremental=True, kernel="bitset")
    t_par, par, _ = _bv40_run(incremental=True, kernel="bitset", parallel=True)
    for name, observed in (("legacy", legacy), ("optimized", fast), ("parallel", par)):
        assert observed == BV40_BASELINE, (
            f"bv40 {name} arm diverged from the pinned baseline: {observed}"
        )
    bv_speedup = t_legacy / t_fast

    # QAOA-64: the commuting pipeline on an 8x8 grid device
    tq_legacy, q_legacy, _ = _qaoa64_run(incremental=False, kernel="nx")
    tq_fast, q_fast, q_stats = _qaoa64_run(incremental=True, kernel="bitset")
    for name, observed in (("legacy", q_legacy), ("optimized", q_fast)):
        assert observed == QAOA64_BASELINE, (
            f"qaoa64 {name} arm diverged from the pinned baseline: {observed}"
        )
    qaoa_speedup = tq_legacy / tq_fast

    rows = [
        [
            "bv40/ibm_mumbai",
            round(t_legacy, 2),
            round(t_fast, 2),
            round(t_par, 2),
            f"{bv_speedup:.1f}x",
            fast["fingerprint"],
        ],
        [
            "qaoa64/grid8x8",
            round(tq_legacy, 2),
            round(tq_fast, 2),
            "-",
            f"{qaoa_speedup:.1f}x",
            q_fast["fingerprint"],
        ],
    ]
    return rows, bv_speedup, qaoa_speedup, fast_stats, q_stats


def test_routing_throughput(benchmark):
    rows, bv_speedup, qaoa_speedup, bv_stats, qaoa_stats = once(
        benchmark, _measure
    )
    table = format_table(
        ["workload", "legacy_s", "optimized_s", "parallel_s", "speedup", "fingerprint"],
        rows,
    )
    emit(
        "routing_throughput",
        table
        + "\n\nbv40 optimized stats: "
        + bv_stats.summary()
        + "\nqaoa64 optimized stats: "
        + qaoa_stats.summary(),
    )
    assert bv_speedup >= MIN_SPEEDUP, (
        f"optimized router only {bv_speedup:.1f}x faster on bv40 @ "
        f"trials={TRIALS} (need >= {MIN_SPEEDUP}x)"
    )
    assert qaoa_speedup >= MIN_SPEEDUP, (
        f"optimized router only {qaoa_speedup:.1f}x faster on QAOA-64 "
        f"(need >= {MIN_SPEEDUP}x)"
    )
