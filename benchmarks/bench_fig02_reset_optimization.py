"""Paper Fig. 2: measure + reset vs measure + classically-controlled X.

The paper reports the built-in combination takes 33,179 dt on IBM Mumbai
while the optimised form takes 16,467 dt — a ~50% duration saving.  This
bench regenerates both numbers from the library's duration model and also
shows the end-to-end effect on a reuse-transformed BV circuit.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.circuit import QuantumCircuit
from repro.core import QSCaQR
from repro.transpiler import circuit_duration_dt
from repro.workloads import bv_circuit


def _reset_durations():
    builtin = QuantumCircuit(1, 1)
    builtin.measure_and_reset(0, 0, style="builtin")
    cif = QuantumCircuit(1, 1)
    cif.measure_and_reset(0, 0, style="cif")
    builtin_dt = circuit_duration_dt(builtin)
    cif_dt = circuit_duration_dt(cif)

    bv_builtin = QSCaQR(reset_style="builtin").reduce_to(bv_circuit(5), 2)
    bv_cif = QSCaQR(reset_style="cif").reduce_to(bv_circuit(5), 2)
    return builtin_dt, cif_dt, bv_builtin.duration_dt, bv_cif.duration_dt


def test_fig02_reset_optimization(benchmark):
    builtin_dt, cif_dt, bv_builtin, bv_cif = once(benchmark, _reset_durations)
    saving = 1 - cif_dt / builtin_dt
    rows = [
        ["measure + reset (Fig. 2a)", builtin_dt, "33,179 dt"],
        ["measure + c_if(X) (Fig. 2b)", cif_dt, "16,467 dt"],
        ["BV_5 @ 2 qubits, builtin resets", bv_builtin, "-"],
        ["BV_5 @ 2 qubits, c_if resets", bv_cif, "-"],
    ]
    emit(
        "fig02_reset_optimization",
        format_table(
            ["operation", "duration (dt)", "paper"],
            rows,
            title=f"Reset optimisation: {saving:.1%} duration saving "
            "(paper: ~50%)",
        ),
    )
    # the paper's exact numbers are reproduced by construction
    assert builtin_dt == 33179
    assert cif_dt == 16467
    assert bv_cif < bv_builtin
