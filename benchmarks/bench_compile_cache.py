"""Compile cache: warm-hit and batched-dedup speedups over cold compiles.

The tentpole claim: CaQR compilation is deterministic given (circuit,
backend, mode/knobs, seed), so the content-addressed cache serves repeat
requests without re-running QS/SR at all.  A warm ``caqr_compile`` on the
bv40 sweep must beat the cold compile by >= 20x (measured ~3 orders of
magnitude; the bar leaves room for slow filesystems), and
``compile_batch`` must fold duplicate in-flight requests onto a single
compilation (dedup counter asserted).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_compile_cache.py``.
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.service import CompileRequest, CompileService
from repro.workloads import bv_circuit, random_graph

# the acceptance bar on the headline workload (ISSUE 4 / docs/SERVICE.md)
MIN_WARM_SPEEDUP = 20.0
HEADLINE = "bv40"

WORKLOADS = [
    ("bv16", lambda: bv_circuit(16), {}),
    ("bv24", lambda: bv_circuit(24), {}),
    ("bv40", lambda: bv_circuit(40), {}),
    ("qaoa16-0.3", lambda: random_graph(16, 0.3, seed=7), {"mode": "max_reuse"}),
]

WARM_REPEATS = 5


def _measure_warm():
    rows = []
    headline = None
    for name, build, knobs in WORKLOADS:
        target = build()
        service = CompileService()
        start = time.perf_counter()
        cold = service.compile(target, **knobs)
        t_cold = time.perf_counter() - start
        assert cold.from_cache is False
        start = time.perf_counter()
        for _ in range(WARM_REPEATS):
            warm = service.compile(target, **knobs)
        t_warm = (time.perf_counter() - start) / WARM_REPEATS
        assert warm.from_cache is True
        assert warm.circuit.data == cold.circuit.data, name
        assert warm.metrics == cold.metrics, name
        speedup = t_cold / t_warm
        rows.append(
            [
                name,
                cold.metrics.qubits_used,
                round(t_cold, 3),
                round(1000 * t_warm, 2),
                f"{speedup:.0f}x",
                service.stats.counters["hits"],
            ]
        )
        if name == HEADLINE:
            headline = (speedup, service.stats)
    return rows, headline


def _measure_batch():
    # 3 unique fingerprints submitted 9 times: the batch engine must
    # compile exactly 3 and fold the other 6
    circuits = [bv_circuit(n) for n in (14, 16, 18)]
    requests = [CompileRequest(circuits[i % 3]) for i in range(9)]
    start = time.perf_counter()
    for circuit in circuits:
        for _ in range(3):
            CompileService().compile(circuit)  # no sharing at all
    t_naive = time.perf_counter() - start
    service = CompileService()
    start = time.perf_counter()
    reports = service.compile_batch(requests)
    t_batch = time.perf_counter() - start
    stats = service.stats
    assert stats.counters["dedup_folds"] == 6, stats.summary()
    assert stats.counters["batch_unique"] == 3
    assert stats.counters["misses"] == 3
    assert [r.circuit.num_qubits for r in reports] == [
        requests[i].target.num_qubits for i in range(9)
    ]
    return t_naive, t_batch, stats


def _measure():
    warm_rows, headline = _measure_warm()
    t_naive, t_batch, batch_stats = _measure_batch()
    return warm_rows, headline, (t_naive, t_batch, batch_stats)


def test_compile_cache_speedup(benchmark):
    warm_rows, headline, batch = once(benchmark, _measure)
    speedup, stats = headline
    t_naive, t_batch, batch_stats = batch
    table = format_table(
        ["workload", "qubits", "cold_s", "warm_ms", "speedup", "hits"],
        warm_rows,
    )
    batch_lines = (
        f"batched dedup: 9 requests / 3 unique -> "
        f"{batch_stats.counters['misses']} compiles, "
        f"{batch_stats.counters['dedup_folds']} folds; "
        f"batch {t_batch:.2f}s vs uncached sequential {t_naive:.2f}s "
        f"({t_naive / t_batch:.1f}x)"
    )
    emit(
        "compile_cache",
        table
        + "\n\n"
        + batch_lines
        + "\n\nheadline stats: "
        + stats.summary(),
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache only {speedup:.1f}x faster on {HEADLINE} "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )
