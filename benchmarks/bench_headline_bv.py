"""Headline claim (paper Section 1 / abstract): an n-qubit BV circuit
always compresses to exactly 2 qubits — 60% resource saving at BV_5,
80% at BV_10 — and still computes the secret.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR
from repro.sim import run_counts
from repro.workloads import bv_circuit, bv_expected_bitstring


def _compress_all():
    rows = []
    for n in (3, 5, 8, 10, 12):
        result = QSCaQR().reduce_to(bv_circuit(n), 2)
        counts = run_counts(result.circuit, shots=100, seed=1)
        answer = max(counts, key=counts.get)[: n - 1]
        rows.append(
            [
                f"BV_{n}",
                n,
                result.qubits,
                f"{1 - result.qubits / n:.0%}",
                result.depth,
                answer == bv_expected_bitstring(n),
            ]
        )
    return rows


def test_headline_bv(benchmark):
    rows = once(benchmark, _compress_all)
    emit(
        "headline_bv",
        format_table(
            ["circuit", "qubits", "after reuse", "saving", "depth", "correct"],
            rows,
            title="BV always compresses to 2 qubits (paper: 60% saving at "
            "BV_5; min qubits always 2)",
        ),
    )
    assert all(row[2] == 2 for row in rows)
    assert all(row[5] for row in rows)
