"""Ablation: one-sweep lifetime compiler vs the paper's pair-greedy.

QS-CaQR reduces one wire at a time, evaluating every candidate pair per
step (the paper's algorithm — O(k * n^3)).  The one-sweep lifetime
compiler picks a live-minimising gate order once and seats qubits on
freed wires as it emits (O(n^2)).

Expected: identical (or better) final widths at a fraction of the compile
time — evidence that the paper's greedy is near-optimal on its benchmarks
while its cost can be engineered away.
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR, lifetime_compile_regular
from repro.workloads import regular_benchmark

BENCHMARKS = ["rd_32", "4mod5", "xor_5", "system_9", "bv_10", "cc_10", "multiply_13"]


def _rows():
    rows = []
    for name in BENCHMARKS:
        circuit = regular_benchmark(name)
        start = time.perf_counter()
        pair_floor = QSCaQR().sweep(circuit)[-1].qubits
        pair_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        sweep_result = lifetime_compile_regular(circuit)
        sweep_ms = (time.perf_counter() - start) * 1000
        rows.append(
            [
                name,
                pair_floor,
                sweep_result.qubits,
                round(pair_ms, 1),
                round(sweep_ms, 1),
            ]
        )
    return rows


def test_ablation_lifetime_regular(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_lifetime_regular",
        format_table(
            [
                "benchmark",
                "pair-greedy floor",
                "one-sweep floor",
                "pair-greedy ms",
                "one-sweep ms",
            ],
            rows,
            title="Ablation: paper's pair-greedy vs one-sweep lifetime "
            "compiler (regular circuits)",
        ),
    )
    for name, pair_floor, sweep_floor, pair_ms, sweep_ms in rows:
        assert sweep_floor <= pair_floor, name
    total_pair = sum(row[3] for row in rows)
    total_sweep = sum(row[4] for row in rows)
    assert total_sweep < total_pair / 5  # at least 5x faster overall