"""Fleet gateway: warm-hit throughput vs. a single compile server.

The gateway exists to scale the compile service horizontally: N
``repro serve`` *processes* (each with its own GIL) behind one
consistent-hash router.  This bench measures what that buys on the warm
path — the steady state of a CI farm hammering cached fingerprints:

* **single server** — one ``repro serve`` subprocess, eight client
  processes round-robining a six-key warm set (six distinct calibration
  shards), aggregate req/s;
* **gateway + 3 backends** — the same client load pointed at a
  ``repro gateway`` over three server subprocesses.

The six calibration seeds are chosen *after* the backends bind their
ports so that the hash ring assigns exactly two shards to each backend:
the bench measures the fleet's scaling ceiling, not the luck of a
six-key draw on a 3/2/1 ring split (both scenarios replay the identical
key set, so the baseline is unaffected).  Each hammer worker pre-encodes
its request bodies once and times its own send/receive loop, so the
measurement saturates the server side (decode + fingerprint +
envelope-cache lookup), not client-side JSON encoding or interpreter
start-up.

The gate asserts the fleet serves warm hits at **>= 2x** the single
server.  That requires the hardware to actually run three backend
processes alongside the gateway and clients, so the assertion only
arms on >= 4 usable cores (the nightly CI runner); below that the bench
still reports both numbers and skips the ratio check — on one core the
fleet *cannot* beat a single server, every process shares the same CPU.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_fleet_throughput.py``.
"""

import os
import subprocess
import sys

import pytest
from conftest import emit, once

from repro.analysis import format_table

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

MIN_SPEEDUP = 2.0
MIN_CORES = 4
N_BACKENDS = 3
N_CLIENTS = 8
MEASURE_SECONDS = 5.0
WARM_WIDTH = 24
N_SHARDS = 6
SEED_BASE = 1000

_WORKER = """
import http.client, json, sys, time
from urllib.parse import urlsplit
sys.path.insert(0, {src!r})
from repro.hardware import generic_backend, line
from repro.service.net.wire import request_to_wire
from repro.service.service import CompileRequest
from repro.workloads import bv_circuit

url, deadline_s = sys.argv[1], float(sys.argv[2])
seeds = [int(s) for s in sys.argv[3].split(",")]
bodies = [
    json.dumps(
        request_to_wire(
            CompileRequest(
                target=bv_circuit({width}),
                backend=generic_backend(line({width} + 2), seed=seed),
            )
        )
    ).encode()
    for seed in seeds
]
parts = urlsplit(url)
conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=120)
headers = {{"Content-Type": "application/json"}}
count = 0
start = time.perf_counter()
deadline = start + deadline_s
while time.perf_counter() < deadline:
    conn.request("POST", "/v1/compile", bodies[count % len(bodies)], headers)
    response = conn.getresponse()
    response.read()
    assert response.status == 200, f"status {{response.status}}"
    cache = response.getheader("X-CaQR-Cache")
    assert cache in ("hit", "inflight"), f"not a warm hit: {{cache}}"
    count += 1
elapsed = time.perf_counter() - start
conn.close()
print(count, elapsed)
""".format(src=SRC, width=WARM_WIDTH)


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spawn(args, announce="serving on "):
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline().strip()
    if not line.startswith(announce):
        process.kill()
        raise RuntimeError(f"{args[0]} did not announce itself: {line!r}")
    host_port = line[len(announce):].split(" ")[0]
    return process, f"http://{host_port}"


def _balanced_seeds(backend_urls):
    """Calibration seeds whose shard keys spread evenly over the ring.

    Walks seeds from ``SEED_BASE`` until every backend owns exactly
    ``N_SHARDS / N_BACKENDS`` of the warm set.  Deterministic given the
    backend URLs (the ring is sha256-based).
    """
    from repro.hardware import generic_backend, line
    from repro.service.fleet import HashRing, ring_key
    from repro.service.service import CompileRequest

    ring = HashRing(backend_urls)
    quota = N_SHARDS // len(backend_urls)
    taken = {url: 0 for url in backend_urls}
    seeds = []
    seed = SEED_BASE
    while len(seeds) < N_SHARDS:
        request = CompileRequest(
            target=bv_target(),
            backend=generic_backend(line(WARM_WIDTH + 2), seed=seed),
        )
        owner = ring.owner(ring_key(request.shard(), request.fingerprint()))
        if taken[owner] < quota:
            taken[owner] += 1
            seeds.append(seed)
        seed += 1
    return seeds


def bv_target():
    from repro.workloads import bv_circuit

    return bv_circuit(WARM_WIDTH)


def _prime(url, seeds):
    from repro.hardware import generic_backend, line
    from repro.service import RemoteCompileService
    from repro.service.service import CompileRequest

    client = RemoteCompileService(url, timeout=300)
    try:
        for seed in seeds:
            client.compile_request(
                CompileRequest(
                    target=bv_target(),
                    backend=generic_backend(line(WARM_WIDTH + 2), seed=seed),
                )
            )
    finally:
        client.close()


def _measure_rps(url, seeds):
    """Aggregate warm req/s from N_CLIENTS hammer processes.

    Each worker times its own request loop (imports and process spawn
    excluded), so the aggregate is the sum of per-worker steady-state
    rates.
    """
    env = dict(os.environ, PYTHONPATH=SRC)
    seed_arg = ",".join(str(s) for s in seeds)
    workers = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER, url, str(MEASURE_SECONDS), seed_arg],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
            cwd=REPO_ROOT,
        )
        for _ in range(N_CLIENTS)
    ]
    rps = 0.0
    for worker in workers:
        out, _ = worker.communicate(timeout=MEASURE_SECONDS + 120)
        if worker.returncode != 0:
            raise RuntimeError(f"hammer worker failed: {out}")
        count, elapsed = out.strip().splitlines()[-1].split()
        rps += int(count) / float(elapsed)
    return rps


def _measure():
    # -- fleet: gateway over three server processes ----------------------
    backends = [_spawn(["serve", "--port", "0"]) for _ in range(N_BACKENDS)]
    backend_urls = [url for _, url in backends]
    seeds = _balanced_seeds(backend_urls)
    gateway_args = ["gateway", "--port", "0", "--probe-interval", "1.0"]
    for backend_url in backend_urls:
        gateway_args += ["--backend", backend_url]
    gateway, gateway_url = _spawn(gateway_args)
    try:
        _prime(gateway_url, seeds)
        fleet_rps = _measure_rps(gateway_url, seeds)
    finally:
        gateway.terminate()
        gateway.wait(timeout=30)
        for process, _ in backends:
            process.terminate()
        for process, _ in backends:
            process.wait(timeout=30)

    # -- baseline: one server process, identical key set -----------------
    server, url = _spawn(["serve", "--port", "0"])
    try:
        _prime(url, seeds)
        single_rps = _measure_rps(url, seeds)
    finally:
        server.terminate()
        server.wait(timeout=30)
    return single_rps, fleet_rps


def test_fleet_throughput(benchmark):
    single_rps, fleet_rps = once(benchmark, _measure)
    speedup = fleet_rps / single_rps if single_rps > 0 else float("inf")
    cores = _usable_cores()
    table = format_table(
        ["path", "warm req/s"],
        [
            ["single server, 8 client procs", f"{single_rps:.0f}"],
            [
                f"gateway + {N_BACKENDS} backends, 8 client procs",
                f"{fleet_rps:.0f}",
            ],
            ["speedup", f"{speedup:.2f}x"],
            ["usable cores", str(cores)],
        ],
    )
    emit("fleet_throughput", table)
    if cores < MIN_CORES:
        pytest.skip(
            f"{cores} usable core(s): a {N_BACKENDS}-backend fleet cannot "
            f"out-parallel one server (gate needs >= {MIN_CORES} cores); "
            f"measured {fleet_rps:.0f} vs {single_rps:.0f} req/s"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"fleet warm throughput only {speedup:.2f}x a single server "
        f"(need >= {MIN_SPEEDUP}x: {fleet_rps:.0f} vs {single_rps:.0f} req/s)"
    )
