"""Ablation: QS-CaQR pair-selection policy.

The paper selects the candidate pair minimising the post-reuse critical
path (with the dummy D node).  This ablation compares:

* ``critical-path`` — the paper's policy (+ reuse-potential lookahead);
* ``first-valid``  — take any valid pair (no evaluation);
* ``duration``     — rank by estimated duration instead of depth.

Expected: critical-path selection yields equal-or-shallower circuits at
equal qubit budgets, justifying the evaluation cost.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR, ReuseAnalysis, apply_reuse_pair
from repro.workloads import bv_circuit, regular_benchmark

BENCHMARKS = ["bv_10", "multiply_13", "system_9", "xor_5"]


def _first_valid_sweep(circuit):
    """Greedy reuse that applies the first valid pair found each step."""
    current = circuit
    while True:
        pairs = ReuseAnalysis(current).valid_pairs()
        if not pairs:
            return current
        current = apply_reuse_pair(current, pairs[0], validate=False).circuit


def _rows():
    rows = []
    for name in BENCHMARKS:
        circuit = regular_benchmark(name)
        paper = QSCaQR(objective="depth").sweep(circuit)[-1]
        duration = QSCaQR(objective="duration").sweep(circuit)[-1]
        naive = _first_valid_sweep(circuit)
        rows.append(
            [
                name,
                f"{paper.qubits}/{paper.depth}",
                f"{duration.qubits}/{duration.depth}",
                f"{naive.num_qubits}/{naive.depth()}",
            ]
        )
    return rows


def test_ablation_pair_selection(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_pair_selection",
        format_table(
            ["benchmark", "critical-path (q/d)", "duration (q/d)", "first-valid (q/d)"],
            rows,
            title="Ablation: pair-selection policy (qubits/depth at maximal reuse)",
        ),
    )

    def parse(cell):
        qubits, depth = cell.split("/")
        return int(qubits), int(depth)

    for name, paper, _duration, naive in rows:
        paper_qubits, paper_depth = parse(paper)
        naive_qubits, naive_depth = parse(naive)
        # the evaluated policy never ends with more qubits, and when tied
        # on qubits it is not deeper
        assert paper_qubits <= naive_qubits, name
        if paper_qubits == naive_qubits:
            assert paper_depth <= naive_depth + 2, name
