"""Paper Table 2: SR-CaQR vs QS-CaQR(MIN-SWAP) — SWAP count and duration.

For fairness (as in the paper) the QS side exhausts every qubit-saving
count and keeps the version with the fewest SWAPs after hardware mapping;
the SR side routes directly with reuse-aware lazy mapping.  Both target
the IBM Mumbai architecture.

Shape checks: SR-CaQR matches or beats QS-CaQR(MIN-SWAP) in SWAPs on most
benchmarks, and strictly beats it somewhere (paper: "for all regular
applications SR-CaQR has the same or better SWAP gate count").
"""

from conftest import emit, once

from repro.analysis import collect_metrics, format_table
from repro.core import SRCaQR, SRCaQRCommuting, select_point, sweep_commuting, sweep_regular
from repro.hardware import ibm_mumbai
from repro.workloads import random_graph, regular_benchmark

REGULAR = ["rd_32", "4mod5", "multiply_13", "system_9", "bv_10", "cc_10", "xor_5"]
QAOA_SIZES = [5, 10, 15, 20]
DENSITY = 0.30


def _rows():
    backend = ibm_mumbai()
    rows = []
    for name in REGULAR:
        circuit = regular_benchmark(name)
        qs_points = sweep_regular(circuit, backend=backend, seed=19)
        qs = select_point(qs_points, "min_swap")
        sr = SRCaQR(backend).run(circuit)
        rows.append(
            [
                name,
                qs.swap_count,
                qs.compiled_duration_dt,
                sr.swap_count,
                sr.duration_dt,
                collect_metrics(sr.circuit).reuse_resets,
            ]
        )
    for n in QAOA_SIZES:
        graph = random_graph(n, DENSITY, seed=7)
        evaluation = "schedule" if n <= 15 else "degree"
        qs_points = sweep_commuting(
            graph, backend=backend, seed=19, candidate_evaluation=evaluation
        )
        qs = select_point(qs_points, "min_swap")
        sr = SRCaQRCommuting(backend).run(graph)
        rows.append(
            [
                f"qaoa{n}-0.3",
                qs.swap_count,
                qs.compiled_duration_dt,
                sr.swap_count,
                sr.duration_dt,
                collect_metrics(sr.circuit).reuse_resets,
            ]
        )
    return rows


def test_table2_sr_vs_qs(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "table2_sr_vs_qs",
        format_table(
            [
                "benchmark",
                "QS swaps",
                "QS duration",
                "SR swaps",
                "SR duration",
                "SR reuses",
            ],
            rows,
            title="Table 2: SR-CaQR vs QS-CaQR (MIN-SWAP) on IBM Mumbai",
        ),
    )
    swap_not_worse = sum(1 for row in rows if row[3] <= row[1])
    swap_strictly_better = sum(1 for row in rows if row[3] < row[1])
    duration_better = sum(1 for row in rows if row[4] < row[2])
    reuse_happened = sum(1 for row in rows if row[5] > 0)
    # Reproduced shape: SR ties or beats QS(MIN-SWAP) on the reuse-rich
    # benchmarks (star-shaped interaction graphs, sparse QAOA) and wins
    # duration nearly everywhere thanks to lazy scheduling + reuse.  Our
    # SABRE-L3 baseline out-routes SR on the dense arithmetic circuits —
    # a deviation from the paper's "same or better everywhere" recorded
    # in EXPERIMENTS.md.
    assert swap_not_worse >= len(rows) // 2, rows
    assert swap_strictly_better >= 1, rows
    assert duration_better >= 0.7 * len(rows), rows
    assert reuse_happened >= 3, rows
