"""Shared helpers for the experiment benchmarks.

Every bench regenerates one of the paper's tables or figures: it computes
the data (timed through pytest-benchmark), prints the paper-style table or
series, and archives the text under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print an experiment report and archive it under results/."""
    banner = "=" * 72
    print(f"\n{banner}\n{name}\n{banner}\n{text}\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def once(benchmark, func):
    """Run *func* exactly once under the benchmark timer; return its value."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
