"""Compile-service hot-path latency: persistent pool and envelope cache.

The two perf claims of the zero-copy hot path, each measured and gated:

* **warm-batch re-dispatch** — the same 3-member batch dispatched
  repeatedly (cache cleared between rounds, so every round recompiles)
  through an ``ephemeral`` service (fresh process pool + full request
  pickle per call) vs. a ``persistent`` one (long-lived pool, request
  records shipped once, then fingerprint-only tasks).  Persistent rounds
  are primed past the record-shipping window first, so the timed rounds
  measure the steady state.  Gate: ephemeral median >= ``MIN_SPEEDUP`` x
  persistent median;
* **warm-hit HTTP latency** — repeated ``/v1/compile`` for one warm
  fingerprint against a server with the encoded-envelope cache on vs.
  off.  The envelope path skips ``report_to_dict`` + JSON per hit; the
  gate is soft (within ``ENVELOPE_SLACK`` of the non-envelope median and
  at least one counted ``envelope_hits``) because small-circuit
  serialization is already cheap.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_service_latency.py``.
"""

import statistics
import time

from conftest import emit, once

from repro.analysis import format_table
from repro.service import (
    CompileRequest,
    CompileService,
    RemoteCompileService,
    start_server_thread,
)
from repro.workloads import bv_circuit

#: Hard gate: steady-state persistent re-dispatch must beat the
#: spawn-a-pool-per-call path by at least this factor.
MIN_SPEEDUP = 2.0

#: Soft gate: envelope-on warm hits may not be slower than envelope-off
#: by more than this factor (they should be faster; the bar caps noise).
ENVELOPE_SLACK = 1.25

BATCH_WIDTHS = (4, 5, 6)
PRIME_ROUNDS = 3  # > records-shipped window (max_workers=2) for persistent
TIMED_ROUNDS = 7
WARM_HITS = 150


def _median_redispatch(service):
    requests = [CompileRequest(target=bv_circuit(n)) for n in BATCH_WIDTHS]
    for _ in range(PRIME_ROUNDS):
        service.cache.clear()
        service.compile_batch(requests, parallel=True, max_workers=2)
    samples = []
    for _ in range(TIMED_ROUNDS):
        service.cache.clear()
        start = time.perf_counter()
        service.compile_batch(requests, parallel=True, max_workers=2)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_persistent_pool_redispatch_speedup(benchmark):
    def run():
        ephemeral = CompileService(max_workers=2, workers_mode="ephemeral")
        persistent = CompileService(max_workers=2, workers_mode="persistent")
        try:
            ephemeral_s = _median_redispatch(ephemeral)
            persistent_s = _median_redispatch(persistent)
            spawns = persistent.stats.counters["worker_pool_spawns"]
            shipped = persistent.stats.counters["worker_records_shipped"]
            tasks = persistent.stats.counters["worker_tasks"]
        finally:
            ephemeral.close()
            persistent.close()
        return ephemeral_s, persistent_s, spawns, shipped, tasks

    ephemeral_s, persistent_s, spawns, shipped, tasks = once(benchmark, run)
    speedup = ephemeral_s / persistent_s

    rows = [
        ["ephemeral (pool per call)", f"{ephemeral_s * 1000:.1f}", "1.00x"],
        [
            "persistent (zero-copy)",
            f"{persistent_s * 1000:.1f}",
            f"{speedup:.2f}x",
        ],
    ]
    text = format_table(
        ["mode", "median re-dispatch (ms)", "speedup"], rows
    ) + (
        f"\n{PRIME_ROUNDS} prime + {TIMED_ROUNDS} timed rounds of a "
        f"{len(BATCH_WIDTHS)}-member batch, max_workers=2\n"
        f"persistent pool spawns={spawns}, records shipped={shipped}, "
        f"tasks={tasks}"
    )
    emit("bench_service_latency_pool", text)

    assert spawns == 1, "the persistent pool must be spawned exactly once"
    assert speedup >= MIN_SPEEDUP, (
        f"persistent re-dispatch only {speedup:.2f}x faster than ephemeral "
        f"(gate: {MIN_SPEEDUP}x; ephemeral {ephemeral_s * 1000:.1f}ms vs "
        f"persistent {persistent_s * 1000:.1f}ms)"
    )


def _warm_hit_latencies(handle, request):
    client = RemoteCompileService(handle.url, timeout=120)
    try:
        client.compile_classified(request)  # miss
        client.compile_classified(request)  # genuine hit (stores envelope)
        samples = []
        for _ in range(WARM_HITS):
            start = time.perf_counter()
            client.compile_classified(request)
            samples.append(time.perf_counter() - start)
    finally:
        client.close()
    samples.sort()
    return samples


def test_envelope_cache_warm_hit_latency(benchmark):
    request = CompileRequest(target=bv_circuit(12))

    def run():
        with_handle = start_server_thread(service=CompileService())
        try:
            with_samples = _warm_hit_latencies(with_handle, request)
            envelope_hits = with_handle.server.stats.counters.get(
                "envelope_hits", 0
            )
        finally:
            with_handle.stop()
        without_handle = start_server_thread(
            service=CompileService(), envelope_cache_entries=0
        )
        try:
            without_samples = _warm_hit_latencies(without_handle, request)
        finally:
            without_handle.stop()
        return with_samples, without_samples, envelope_hits

    with_samples, without_samples, envelope_hits = once(benchmark, run)
    with_median = statistics.median(with_samples)
    without_median = statistics.median(without_samples)

    def p99(samples):
        return samples[min(len(samples) - 1, int(0.99 * len(samples)))]

    rows = [
        [
            "envelope off",
            f"{without_median * 1000:.2f}",
            f"{p99(without_samples) * 1000:.2f}",
        ],
        [
            "envelope on",
            f"{with_median * 1000:.2f}",
            f"{p99(with_samples) * 1000:.2f}",
        ],
    ]
    text = format_table(["warm-hit path", "p50 (ms)", "p99 (ms)"], rows) + (
        f"\n{WARM_HITS} warm hits of bv_{request.target.num_qubits}; "
        f"envelope_hits counted: {envelope_hits}"
    )
    emit("bench_service_latency_envelope", text)

    assert envelope_hits >= WARM_HITS, "warm hits must ride the envelope cache"
    assert with_median <= without_median * ENVELOPE_SLACK, (
        f"envelope-on warm hits regressed: {with_median * 1000:.2f}ms vs "
        f"{without_median * 1000:.2f}ms off"
    )
