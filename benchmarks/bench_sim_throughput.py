"""Simulation engines: throughput over the reference trajectory loop.

The tentpole claim: on the circuits CaQR actually emits — dynamic
circuits full of mid-circuit measurement and reset — the branch-tree
engine turns per-shot statevector evolution into per-branch evolution,
and the batched engine vectorises noisy trajectories, so the heavy
recurring workloads (Table 3 TVD, Fig. 15-16 convergence, the nightly
differential pool) stop being dominated by the shot loop.

Gate: >= 5x on a QS-CaQR'd bv(16) circuit at 4096 shots, with seeded
noiseless counts *identical* to the reference and noisy marginals within
TVD 0.02 (per clbit — the full 2^15-outcome distribution cannot be
compared at achievable shot counts).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_sim_throughput.py``.
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR
from repro.sim import NoiseModel, SimStats, run_counts
from repro.workloads import bv_circuit

# acceptance bar (measured ~300x for the branch tree and ~40x for the
# batched engine in CI-class containers; 5x leaves a wide margin)
MIN_SPEEDUP = 5.0
BV_WIDTH = 16
SHOTS = 4096
SEED = 2
NOISE = NoiseModel.uniform(
    one_qubit_error=0.005, two_qubit_error=0.02, readout=0.01
)
MAX_MARGINAL_TVD = 0.02


def _timed_counts(circuit, engine, noise=None):
    stats = SimStats()
    start = time.perf_counter()
    counts = run_counts(
        circuit, shots=SHOTS, seed=SEED, noise=noise, engine=engine, stats=stats
    )
    return time.perf_counter() - start, counts, stats


def _clbit_marginals(counts, num_clbits):
    shots = sum(counts.values())
    ones = [0.0] * num_clbits
    for key, value in counts.items():
        for position, bit in enumerate(key):
            if bit == "1":
                ones[position] += value
    return [count / shots for count in ones]


def _measure():
    circuit = QSCaQR().sweep(bv_circuit(BV_WIDTH))[-1].circuit

    # noiseless: reference loop vs branch tree, counts must be identical
    t_reference, reference_counts, _ = _timed_counts(circuit, "reference")
    t_tree, tree_counts, tree_stats = _timed_counts(circuit, "branchtree")
    assert tree_counts == reference_counts, (
        "branch-tree counts diverged from the reference loop"
    )
    tree_speedup = t_reference / t_tree

    # noisy: reference loop vs batched trajectories, marginals must agree
    t_noisy_reference, noisy_reference, _ = _timed_counts(
        circuit, "reference", noise=NOISE
    )
    t_batch, batch_counts, batch_stats = _timed_counts(
        circuit, "batch", noise=NOISE
    )
    batch_speedup = t_noisy_reference / t_batch
    reference_marginals = _clbit_marginals(noisy_reference, circuit.num_clbits)
    batch_marginals = _clbit_marginals(batch_counts, circuit.num_clbits)
    marginal_tvd = max(
        abs(a - b) for a, b in zip(reference_marginals, batch_marginals)
    )

    rows = [
        [
            "noiseless",
            "branchtree",
            round(t_reference, 2),
            round(t_tree, 3),
            f"{tree_speedup:.1f}x",
            "exact",
        ],
        [
            "noisy",
            "batch",
            round(t_noisy_reference, 2),
            round(t_batch, 3),
            f"{batch_speedup:.1f}x",
            f"{marginal_tvd:.4f}",
        ],
    ]
    return rows, tree_speedup, batch_speedup, marginal_tvd, tree_stats, batch_stats


def test_sim_throughput(benchmark):
    rows, tree_speedup, batch_speedup, marginal_tvd, tree_stats, batch_stats = (
        once(benchmark, _measure)
    )
    table = format_table(
        ["mode", "engine", "reference_s", "engine_s", "speedup", "fidelity"],
        rows,
    )
    emit(
        "sim_throughput",
        table
        + "\n\nbranchtree stats: "
        + tree_stats.summary()
        + "\nbatch stats: "
        + batch_stats.summary(),
    )
    assert tree_speedup >= MIN_SPEEDUP, (
        f"branch tree only {tree_speedup:.1f}x faster on "
        f"bv({BV_WIDTH}) @ {SHOTS} shots (need >= {MIN_SPEEDUP}x)"
    )
    assert batch_speedup >= MIN_SPEEDUP, (
        f"batched engine only {batch_speedup:.1f}x faster under noise "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert marginal_tvd < MAX_MARGINAL_TVD, (
        f"noisy per-clbit marginal TVD {marginal_tvd:.4f} exceeds "
        f"{MAX_MARGINAL_TVD}"
    )
