"""Ablation: QAOA rounds vs reuse opportunity (scope boundary).

Measure-based reuse needs qubits that *finish early*.  Each extra QAOA
round extends every qubit's lifetime through another mixer layer, and the
commuting freedom the paper exploits only applies within a single cost
layer — so reuse shrinks sharply with p.  The paper evaluates p = 1;
this ablation quantifies how fast the opportunity decays beyond it.
"""

import networkx as nx

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR, valid_reuse_pairs
from repro.workloads import qaoa_maxcut_circuit

N = 8


def _rows():
    graph = nx.cycle_graph(N)  # connected, no isolated qubits
    rows = []
    for rounds in (1, 2, 3):
        gammas = [0.8 / r for r in range(1, rounds + 1)]
        betas = [0.4] * rounds
        circuit = qaoa_maxcut_circuit(graph, gammas=gammas, betas=betas)
        pairs = valid_reuse_pairs(circuit)
        floor = QSCaQR().minimum_qubits(circuit)
        rows.append(
            [rounds, circuit.size(), len(pairs), floor, f"{1 - floor / N:.0%}"]
        )
    return rows


def test_ablation_multiround(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_multiround",
        format_table(
            ["QAOA rounds (p)", "gates", "valid reuse pairs", "qubit floor", "saving"],
            rows,
            title="Ablation: reuse opportunity decays with QAOA depth p "
            "(the paper's experiments use p = 1)",
        ),
    )
    pairs = [row[2] for row in rows]
    floors = [row[3] for row in rows]
    # opportunity strictly shrinks from p=1 to p=2 and never recovers
    assert pairs[0] > pairs[1] >= pairs[2]
    assert floors[0] < floors[1] <= floors[2]