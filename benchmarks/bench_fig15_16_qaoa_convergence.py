"""Paper Figs. 15-16: QAOA-10 COBYLA convergence, SR-CaQR vs no-reuse.

Two problem graphs (density 0.3 and 0.5, as in the paper), both run
end-to-end: COBYLA tunes (gamma, beta) against the noisy simulated Mumbai
device; the baseline is the L3-transpiled circuit, the contender the
SR-CaQR compilation at the paper's 6-qubit budget ("the red curve is the
result of SR-CaQR with 6 qubits").

Shape check: after optimisation each trace's best angles are re-evaluated
with a large shot count (removing COBYLA path noise); the SR-CaQR
compilation reaches an equal-or-better (lower) final energy on both
instances — the paper's "SR-CaQR circuits achieve better max-cut values
and converge faster", under the condition of using fewer/better qubits.
"""

from conftest import emit, once

from repro.analysis import format_series, format_table
from repro.apps import run_qaoa, sr_caqr_factory, transpiled_factory
from repro.apps.maxcut import expected_cut_from_counts
from repro.hardware import ibm_mumbai
from repro.sim import run_counts
from repro.workloads import random_graph

N = 10
DENSITIES = [0.3, 0.5]
SHOTS = 96
ITERATIONS = 15
FINAL_SHOTS = 1500


def _energy_at(graph, factory, gamma, beta):
    circuit, noise = factory(gamma, beta)
    counts = run_counts(circuit, shots=FINAL_SHOTS, seed=101, noise=noise)
    return -expected_cut_from_counts(graph, counts)


def _traces():
    backend = ibm_mumbai()
    out = {}
    for density in DENSITIES:
        graph = random_graph(N, density, seed=7)
        factories = {
            "baseline": transpiled_factory(graph, backend, relaxation=False),
            "sr_caqr": sr_caqr_factory(
                graph, backend, qubit_limit=6, relaxation=False
            ),
        }
        traces = {
            kind: run_qaoa(
                graph, factory, shots=SHOTS, max_iterations=ITERATIONS, seed=29
            )
            for kind, factory in factories.items()
        }
        # isolate compilation quality: evaluate every compiler at the best
        # angles either optimiser found, with a large shot count
        angle_sets = [(t.gamma, t.beta) for t in traces.values()]
        for kind, factory in factories.items():
            final = min(
                _energy_at(graph, factory, gamma, beta)
                for gamma, beta in angle_sets
            )
            out[(density, kind)] = (traces[kind], final)
    return out


def test_fig15_16_qaoa_convergence(benchmark):
    traces = once(benchmark, _traces)
    sections = []
    rows = []
    for density in DENSITIES:
        for kind in ("baseline", "sr_caqr"):
            trace, final = traces[(density, kind)]
            sections.append(
                format_series(
                    f"QAOA-{N} density {density} [{kind}]",
                    list(range(1, trace.evaluations + 1)),
                    [round(e, 3) for e in trace.energies],
                    "iteration",
                    "-expected cut",
                )
            )
            rows.append(
                [f"{N}-{density}", kind, round(trace.best_energy, 3), round(final, 3)]
            )
    summary = format_table(
        ["instance", "compiler", "best trace energy", "final energy (1500 shots)"],
        rows,
        title="Figs. 15-16: QAOA convergence under Mumbai noise "
        "(lower is better)",
    )
    emit("fig15_16_qaoa_convergence", summary + "\n\n" + "\n\n".join(sections))

    for density in DENSITIES:
        base_final = traces[(density, "baseline")][1]
        sr_final = traces[(density, "sr_caqr")][1]
        # at matched angles, the 6-qubit SR compilation reaches energies
        # at least as good as the 10-qubit baseline (small shot-noise slack)
        # — the paper's claim "better performance ... under the condition
        # of using fewer qubits"
        assert sr_final <= base_final + 0.1, rows
    assert any(row[1] == "sr_caqr" for row in rows)
