"""Ablation: noise-aware vs distance-only placement in SR-CaQR.

SR-CaQR breaks placement ties by readout / CNOT error and routes SWAPs
along error-weighted paths.  This ablation measures the estimated success
probability (ESP) of the compiled circuits with and without the
calibration data.

Measured finding (recorded, not assumed): at Falcon-scale error
variability, SWAP *count* dominates link *quality* — error-weighted paths
occasionally take an extra hop and lose more ESP than the better links
recover.  Neither mode dominates; the two modes genuinely change the
compilation (that is what the assertions check), and the per-benchmark
table quantifies the tradeoff.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import SRCaQR
from repro.hardware import ibm_mumbai
from repro.sim import estimated_success_probability
from repro.workloads import regular_benchmark

BENCHMARKS = ["bv_10", "multiply_13", "system_9", "cc_10", "xor_5", "4mod5"]


def _rows():
    backend = ibm_mumbai()
    rows = []
    for name in BENCHMARKS:
        circuit = regular_benchmark(name)
        aware = SRCaQR(backend, noise_aware=True).run(circuit, objective="esp")
        blind = SRCaQR(backend, noise_aware=False).run(circuit, objective="esp")
        esp_aware = estimated_success_probability(
            aware.circuit, backend.calibration, include_decoherence=False
        )
        esp_blind = estimated_success_probability(
            blind.circuit, backend.calibration, include_decoherence=False
        )
        rows.append(
            [
                name,
                aware.swap_count,
                blind.swap_count,
                round(esp_aware, 4),
                round(esp_blind, 4),
            ]
        )
    return rows


def test_ablation_noise_aware(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_noise_aware",
        format_table(
            ["benchmark", "swaps aware", "swaps blind", "ESP aware", "ESP blind"],
            rows,
            title="Ablation: noise-aware placement in SR-CaQR (higher ESP is better)",
        ),
    )
    # the knob must actually matter: some benchmark compiles differently
    differing = sum(
        1 for row in rows if row[1] != row[2] or abs(row[3] - row[4]) > 1e-9
    )
    assert differing >= 1, rows
    # and on the connectivity-starved star circuits both modes reach the
    # SWAP-free compilation (reuse makes placement error-tolerant)
    for name in ("bv_10", "cc_10", "xor_5"):
        row = next(r for r in rows if r[0] == name)
        assert row[1] == row[2] == 0, row
