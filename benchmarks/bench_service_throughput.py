"""Networked compile service: warm-hit throughput and batch fan-out.

The HTTP front-end exists to share one cache and one in-flight dedup
table across processes; the cost of that sharing is a loopback HTTP
round trip per request.  This bench quantifies it:

* **warm-hit req/s** — single-threaded and 8-thread request rates
  against a ``CompileServer`` serving a warm fingerprint, next to the
  in-process ``CompileService`` rate for the same lookups.  The wire
  adds serialization + a socket round trip, so remote throughput is a
  fraction of in-process — the bar only insists the service stays
  usable (>= ``MIN_REMOTE_RPS`` warm hits/s);
* **batch fan-out** — one ``/v1/compile_batch`` call with 9 members /
  3 unique fingerprints vs. 9 sequential remote requests, asserting the
  server-side dedup counters fold the duplicates.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py``.
"""

import threading
import time

from conftest import emit, once

from repro.analysis import format_table
from repro.service import (
    CompileRequest,
    CompileService,
    RemoteCompileService,
    start_server_thread,
)
from repro.workloads import bv_circuit

# floor for warm hits through the loopback HTTP stack; local measurement
# is ~2 orders of magnitude higher, the bar just catches pathologies
MIN_REMOTE_RPS = 20.0

WARM_REQUESTS = 200
HAMMER_THREADS = 8


def _rps(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def _measure_warm_hits(handle):
    request = CompileRequest(target=bv_circuit(16))

    local = CompileService()
    local.compile_request(request)
    start = time.perf_counter()
    for _ in range(WARM_REQUESTS):
        local.compile_request(request)
    local_rps = _rps(WARM_REQUESTS, time.perf_counter() - start)

    client = RemoteCompileService(handle.url, timeout=120)
    client.compile_request(request)  # prime the server cache
    start = time.perf_counter()
    for _ in range(WARM_REQUESTS):
        report = client.compile_request(request)
    remote_rps = _rps(WARM_REQUESTS, time.perf_counter() - start)
    assert report.from_cache is True
    client.close()

    def hammer(n):
        worker = RemoteCompileService(handle.url, timeout=120)
        for _ in range(n):
            worker.compile_request(request)
        worker.close()

    per_thread = WARM_REQUESTS // HAMMER_THREADS
    threads = [
        threading.Thread(target=hammer, args=(per_thread,))
        for _ in range(HAMMER_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    hammered_rps = _rps(
        per_thread * HAMMER_THREADS, time.perf_counter() - start
    )
    return local_rps, remote_rps, hammered_rps


def _measure_batch(handle):
    circuits = [bv_circuit(n) for n in (14, 16, 18)]
    requests = [CompileRequest(target=circuits[i % 3]) for i in range(9)]
    client = RemoteCompileService(handle.url, timeout=300)

    start = time.perf_counter()
    for request in requests:
        client.compile_request(request)
    t_sequential = time.perf_counter() - start  # 3 cold + 6 warm round trips

    client.clear()
    before = dict(handle.server.service.stats.counters)
    start = time.perf_counter()
    reports = client.compile_batch(requests)
    t_batch = time.perf_counter() - start
    after = handle.server.service.stats.counters
    folds = after.get("dedup_folds", 0) - before.get("dedup_folds", 0)
    misses = after.get("misses", 0) - before.get("misses", 0)
    assert folds == 6, f"server must fold the 6 duplicate members, saw {folds}"
    assert misses == 3, f"server must compile 3 uniques, saw {misses}"
    assert [r.circuit.num_qubits for r in reports] == [
        r.target.num_qubits for r in requests
    ]
    client.close()
    return t_sequential, t_batch


def _measure():
    handle = start_server_thread(service=CompileService())
    try:
        warm = _measure_warm_hits(handle)
        batch = _measure_batch(handle)
        counters = dict(handle.server.service.stats.counters)
    finally:
        handle.stop()
    return warm, batch, counters


def test_service_throughput(benchmark):
    (local_rps, remote_rps, hammered_rps), (t_seq, t_batch), counters = once(
        benchmark, _measure
    )
    table = format_table(
        ["path", "warm req/s"],
        [
            ["in-process", f"{local_rps:.0f}"],
            ["remote, 1 thread", f"{remote_rps:.0f}"],
            [f"remote, {HAMMER_THREADS} threads", f"{hammered_rps:.0f}"],
        ],
    )
    batch_line = (
        f"batch fan-out: 9 members / 3 unique in one POST -> "
        f"{t_batch:.2f}s vs {t_seq:.2f}s for 9 sequential round trips"
    )
    emit(
        "service_throughput",
        table
        + "\n\n"
        + batch_line
        + f"\n\nserver counters: http_requests={counters.get('http_requests')}, "
        f"hits={counters.get('hits')}, misses={counters.get('misses')}, "
        f"dedup_folds={counters.get('dedup_folds')}",
    )
    assert remote_rps >= MIN_REMOTE_RPS, (
        f"remote warm hits only {remote_rps:.1f} req/s "
        f"(need >= {MIN_REMOTE_RPS})"
    )
