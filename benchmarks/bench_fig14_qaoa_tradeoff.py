"""Paper Fig. 14: QAOA tradeoff curves for n in {16, 32, 128}, both graph
families, density 0.30 (the 64-qubit case is Fig. 3 / its own bench).

Shape checks: every instance admits reuse, the power-law instances
compress further than the random ones at every size, and depth rises as
qubits shrink.
"""

from conftest import emit, once

from repro.analysis import format_series
from repro.core import QSCaQRCommuting
from repro.workloads import power_law_graph, random_graph

SIZES = [16, 32, 128]
DENSITY = 0.30
SEED = 7


def _sweep(graph, stride):
    compiler = QSCaQRCommuting(graph)
    floor = compiler.lifetime_floor()
    n = graph.number_of_nodes()
    budgets = sorted(set(list(range(n, floor - 1, -stride)) + [floor]), reverse=True)
    return compiler.lifetime_sweep(budgets=budgets)


def _all_sweeps():
    out = {}
    for n in SIZES:
        stride = 1 if n <= 32 else 8
        out[("power-law", n)] = _sweep(power_law_graph(n, DENSITY, seed=SEED), stride)
        out[("random", n)] = _sweep(random_graph(n, DENSITY, seed=SEED), stride)
    return out


def test_fig14_qaoa_tradeoff(benchmark):
    sweeps = once(benchmark, _all_sweeps)
    sections = []
    for (family, n), points in sorted(sweeps.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        sections.append(
            format_series(
                f"QAOA-{n} {family} (density {DENSITY})",
                [p.qubits for p in points],
                [p.depth for p in points],
                "qubits",
                "depth",
            )
        )
    emit("fig14_qaoa_tradeoff", "\n\n".join(sections))

    for n in SIZES:
        pl = sweeps[("power-law", n)]
        rnd = sweeps[("random", n)]
        # reuse exists everywhere
        assert pl[-1].qubits < n and rnd[-1].qubits < n
        # power-law compresses at least as deep as random (relative)
        assert pl[-1].qubits / n <= rnd[-1].qubits / n + 1e-9
        # depth grows as qubits shrink
        assert pl[-1].depth >= pl[0].depth
