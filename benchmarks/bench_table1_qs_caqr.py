"""Paper Table 1: QS-CaQR versions — baseline (no reuse) vs maximal reuse
vs minimal depth, reporting qubits / depth / duration / SWAPs per version.

Benchmarks: the seven regular applications plus QAOA instances at density
0.30 (sizes 5-25), all hardware-mapped for IBM Mumbai (heavy-hex, L3
pipeline — the paper's Qiskit baseline stand-in).

Shape checks: maximal reuse strictly reduces qubit usage wherever reuse
exists; the minimal-depth version's compiled depth never exceeds the
baseline's (reuse extends beyond pure qubit saving — the paper's
"surprisingly better than the baseline" observation).
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import select_point, sweep_commuting, sweep_regular
from repro.hardware import ibm_mumbai
from repro.workloads import qaoa_benchmark, random_graph, regular_benchmark

REGULAR = ["rd_32", "4mod5", "multiply_13", "system_9", "bv_10", "cc_10", "xor_5"]
QAOA_SIZES = [5, 10, 15, 20, 25]
DENSITY = 0.30


def _rows():
    backend = ibm_mumbai()
    rows = []
    sweeps = {}
    for name in REGULAR:
        sweeps[name] = sweep_regular(
            regular_benchmark(name), backend=backend, seed=17
        )
    for n in QAOA_SIZES:
        graph = random_graph(n, DENSITY, seed=7)
        evaluation = "schedule" if n <= 15 else "degree"
        sweeps[f"qaoa{n}-0.3"] = sweep_commuting(
            graph, backend=backend, seed=17, candidate_evaluation=evaluation
        )
    for name, points in sweeps.items():
        for mode in ("baseline", "max_reuse", "min_depth"):
            point = select_point(points, mode)
            rows.append(
                [
                    name,
                    mode,
                    point.qubits,
                    point.compiled_depth,
                    point.compiled_duration_dt,
                    point.swap_count,
                ]
            )
    return rows


def test_table1_qs_caqr(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "table1_qs_caqr",
        format_table(
            ["benchmark", "version", "qubits", "depth", "duration (dt)", "swaps"],
            rows,
            title="Table 1: QS-CaQR baseline vs maximal reuse vs minimal depth "
            "(IBM Mumbai heavy-hex)",
        ),
    )
    by_bench = {}
    for name, mode, qubits, depth, duration, swaps in rows:
        by_bench.setdefault(name, {})[mode] = (qubits, depth, duration, swaps)
    reusable = 0
    for name, modes in by_bench.items():
        base_qubits, base_depth, *_ = modes["baseline"]
        max_qubits = modes["max_reuse"][0]
        min_depth = modes["min_depth"][1]
        if max_qubits < base_qubits:
            reusable += 1
        assert min_depth <= base_depth, name
        assert max_qubits <= base_qubits, name
    # the vast majority of the paper's benchmarks admit reuse
    assert reusable >= len(by_bench) - 2
