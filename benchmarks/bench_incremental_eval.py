"""Incremental evaluation engine: speedup over the from-scratch sweep.

The tentpole claim: one shared DAG + bitset cache, batched candidate
costs, and the closure-free lookahead make the Fig. 13-style greedy
sweep several times faster than re-analysing the circuit every step —
while selecting the *identical* pair sequence (pinned here and, across
hundreds of random circuits, in ``tests/property/test_equivalence_diff.py``).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_incremental_eval.py``.
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.core import QSCaQR
from repro.workloads import bv_circuit

# the acceptance bar: the incremental engine must beat the reference by
# at least this factor on the 40-qubit sweep (measured ~4x in CI-class
# containers; the bar leaves headroom for noisy machines)
MIN_SPEEDUP = 3.0
HEADLINE_WIDTH = 40
SCALING_WIDTHS = [16, 24, 32, 40]


def _time_sweep(circuit, **kwargs):
    compiler = QSCaQR(**kwargs)
    start = time.perf_counter()
    points = compiler.sweep(circuit)
    return time.perf_counter() - start, points, compiler.stats


def _measure():
    rows = []
    headline = None
    for width in SCALING_WIDTHS:
        circuit = bv_circuit(width)
        t_inc, inc_points, stats = _time_sweep(circuit)
        t_ref, ref_points, _ = _time_sweep(circuit, incremental=False)
        assert [p.pairs for p in inc_points] == [p.pairs for p in ref_points], (
            f"engines diverged on bv({width})"
        )
        speedup = t_ref / t_inc
        rows.append(
            [
                width,
                inc_points[-1].qubits,
                round(t_ref, 2),
                round(t_inc, 2),
                f"{speedup:.1f}x",
                f"{1000 * stats.per_step_time('score'):.1f}",
                f"{1000 * stats.per_step_time('lookahead'):.1f}",
                stats.counters.get("parallel_batches", 0),
            ]
        )
        if width == HEADLINE_WIDTH:
            headline = (speedup, stats)
    return rows, headline


def test_incremental_eval_speedup(benchmark):
    rows, headline = once(benchmark, _measure)
    speedup, stats = headline
    table = format_table(
        [
            "qubits",
            "floor",
            "reference_s",
            "incremental_s",
            "speedup",
            "score_ms/step",
            "lookahead_ms/step",
            "par_batches",
        ],
        rows,
    )
    emit(
        "incremental_eval",
        table + "\n\nheadline stats: " + stats.summary(),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"incremental engine only {speedup:.1f}x faster on "
        f"bv({HEADLINE_WIDTH}) (need >= {MIN_SPEEDUP}x)"
    )
