"""Paper Fig. 3: QAOA-64 qubit-usage vs depth tradeoff, density 0.30.

Two input families: the hub-concentrated power-law graph and the uniform
random graph.  The paper's qualitative claims checked here:

* the power-law graph compresses dramatically further than the random
  graph (its floor is a small fraction of 64, the random graph's is not);
* both curves are heavy-tailed: large savings are available before depth
  begins to blow up near the floor.

The paper's absolute percentages ("80% saving within 25% extra duration")
assume a generator convention we cannot recover; EXPERIMENTS.md records
the vertex-separation argument for why they cannot hold under the
edge-probability reading of density 0.30.
"""

from conftest import emit, once

from repro.analysis import ascii_line_chart, format_series
from repro.core import QSCaQRCommuting
from repro.workloads import power_law_graph, random_graph

N = 64
DENSITY = 0.30
SEED = 7


def _sweep(graph):
    compiler = QSCaQRCommuting(graph)
    floor = compiler.lifetime_floor()
    budgets = sorted(set(list(range(N, floor - 1, -4)) + [floor]), reverse=True)
    return compiler.lifetime_sweep(budgets=budgets)


def _both():
    return (
        _sweep(power_law_graph(N, DENSITY, seed=SEED)),
        _sweep(random_graph(N, DENSITY, seed=SEED)),
    )


def test_fig03_qaoa64_tradeoff(benchmark):
    power_law, random_sweep = once(benchmark, _both)
    sections = []
    for name, sweep in (("power-law", power_law), ("random", random_sweep)):
        sections.append(
            format_series(
                f"QAOA-64 {name} (density {DENSITY})",
                [p.qubits for p in sweep],
                [p.depth for p in sweep],
                "qubits",
                "depth",
            )
        )
        base = sweep[0]
        floor = sweep[-1]
        sections.append(
            f"  floor: {floor.qubits} qubits "
            f"({1 - floor.qubits / base.qubits:.0%} saving), "
            f"depth {base.depth} -> {floor.depth}"
        )
    chart = ascii_line_chart(
        [
            ("power-law", [p.qubits for p in power_law], [p.depth for p in power_law]),
            ("random", [p.qubits for p in random_sweep], [p.depth for p in random_sweep]),
        ],
        x_label="qubits",
        y_label="depth",
    )
    emit("fig03_qaoa64_tradeoff", "\n\n".join(sections) + "\n\n" + chart)

    pl_floor = power_law[-1].qubits
    rnd_floor = random_sweep[-1].qubits
    # shape checks: power-law compresses far deeper than random
    assert pl_floor <= 0.3 * N
    assert pl_floor < rnd_floor
    # heavy tail: at half the saving, depth overhead is modest
    pl_mid = min(
        (p for p in power_law if p.qubits <= 40), key=lambda p: -p.qubits
    )
    assert pl_mid.depth <= 2.0 * power_law[0].depth
