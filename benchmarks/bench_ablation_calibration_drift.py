"""Ablation: robustness of the reuse advantage to calibration drift.

Real devices recalibrate daily; a compilation tuned to one snapshot may
chase link-quality details that evaporate overnight.  This ablation
compiles against snapshot A and evaluates the estimated success
probability under a *different* snapshot B (same topology, independently
sampled errors).

Expected: the reuse advantage is *structural* (fewer SWAPs, fewer live
qubits), so SR-CaQR's ESP edge over the baseline survives the drift on
the star-shaped benchmarks where reuse eliminates SWAPs outright.
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import SRCaQR
from repro.hardware import Backend, falcon_27, synthetic_calibration
from repro.sim import estimated_success_probability
from repro.transpiler import transpile
from repro.workloads import regular_benchmark

BENCHMARKS = ["bv_10", "cc_10", "xor_5", "system_9"]


def _snapshot(seed: int) -> Backend:
    coupling = falcon_27()
    return Backend(
        name=f"mumbai_day_{seed}",
        coupling=coupling,
        calibration=synthetic_calibration(coupling, seed=seed),
    )


def _rows():
    day_a = _snapshot(20230319)
    day_b = _snapshot(99991234)
    rows = []
    for name in BENCHMARKS:
        circuit = regular_benchmark(name)
        baseline = transpile(circuit, day_a, optimization_level=3, seed=31)
        reused = SRCaQR(day_a).run(circuit, objective="esp")

        def esp(compiled, backend):
            return estimated_success_probability(
                compiled, backend.calibration, include_decoherence=False
            )

        rows.append(
            [
                name,
                round(esp(baseline.circuit, day_a), 3),
                round(esp(reused.circuit, day_a), 3),
                round(esp(baseline.circuit, day_b), 3),
                round(esp(reused.circuit, day_b), 3),
            ]
        )
    return rows


def test_ablation_calibration_drift(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_calibration_drift",
        format_table(
            [
                "benchmark",
                "base ESP (day A)",
                "SR ESP (day A)",
                "base ESP (day B)",
                "SR ESP (day B)",
            ],
            rows,
            title="Ablation: does the reuse advantage survive calibration "
            "drift? (compiled on day A, evaluated on both)",
        ),
    )
    for name, base_a, sr_a, base_b, sr_b in rows:
        if name in ("bv_10", "cc_10", "xor_5"):
            # SWAP elimination is structural: the edge holds on both days
            assert sr_a >= base_a - 1e-9, (name, "day A")
            assert sr_b >= base_b - 0.02, (name, "day B")