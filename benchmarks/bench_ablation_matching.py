"""Ablation: blossom (optimal max-weight) vs greedy maximal matching in
the commuting-gate scheduler — the replacement the paper's Section 3.4
proposes as future work ("in practice computes a matching that is very
close to optimal").

Expected: greedy is much faster with only a small layer-count penalty.
"""

import time

from conftest import emit, once

from repro.analysis import format_table
from repro.core import schedule_commuting
from repro.workloads import power_law_graph, random_graph

INSTANCES = [
    ("random-16", lambda: random_graph(16, 0.3, seed=7)),
    ("random-32", lambda: random_graph(32, 0.3, seed=7)),
    ("power-law-32", lambda: power_law_graph(32, 0.3, seed=7)),
    ("random-64", lambda: random_graph(64, 0.3, seed=7)),
]


def _rows():
    rows = []
    for name, build in INSTANCES:
        graph = build()
        timings = {}
        layer_counts = {}
        for method in ("blossom", "greedy"):
            start = time.perf_counter()
            schedule = schedule_commuting(graph, [], matching=method)
            timings[method] = time.perf_counter() - start
            layer_counts[method] = schedule.num_layers
        rows.append(
            [
                name,
                layer_counts["blossom"],
                layer_counts["greedy"],
                f"{timings['blossom'] * 1000:.1f}",
                f"{timings['greedy'] * 1000:.1f}",
            ]
        )
    return rows


def test_ablation_matching(benchmark):
    rows = once(benchmark, _rows)
    emit(
        "ablation_matching",
        format_table(
            ["instance", "blossom layers", "greedy layers", "blossom ms", "greedy ms"],
            rows,
            title="Ablation: matching engine in the commuting scheduler",
        ),
    )
    for name, blossom_layers, greedy_layers, *_ in rows:
        # greedy maximal matching is a 2-approximation; in practice the
        # layer count stays within ~30% (paper: "very close to optimal")
        assert greedy_layers <= 1.5 * blossom_layers + 2, name
        assert greedy_layers >= blossom_layers - 1, name
