"""Paper Fig. 13: regular applications — logical depth and compiled depth
as functions of the qubit budget (Multiply_13, System_9, BV_10).

Shape checks: logical depth rises monotonically as qubits shrink, while
the *compiled* depth first stays flat or dips (reuse relieves SWAP
pressure) before rising when saving becomes too aggressive — so the
minimum compiled depth sits at an intermediate budget ("the sweet spot is
usually in the middle").
"""

from conftest import emit, once

from repro.analysis import format_table
from repro.core import sweep_regular
from repro.hardware import ibm_mumbai
from repro.workloads import regular_benchmark

BENCHMARKS = ["multiply_13", "system_9", "bv_10"]


def _sweeps():
    backend = ibm_mumbai()
    return {
        name: sweep_regular(regular_benchmark(name), backend=backend, seed=13)
        for name in BENCHMARKS
    }


def test_fig13_regular_tradeoff(benchmark):
    sweeps = once(benchmark, _sweeps)
    sections = []
    for name, points in sweeps.items():
        sections.append(
            format_table(
                ["qubits", "logical depth", "compiled depth", "swaps"],
                [
                    [p.qubits, p.logical_depth, p.compiled_depth, p.swap_count]
                    for p in points
                ],
                title=f"{name}",
            )
        )
    emit("fig13_regular_tradeoff", "\n\n".join(sections))

    for name, points in sweeps.items():
        logical = [p.logical_depth for p in points]
        assert all(b >= a for a, b in zip(logical, logical[1:])), name
        assert points[-1].qubits < points[0].qubits, name
    # BV_10 reaches the 2-qubit floor
    assert sweeps["bv_10"][-1].qubits == 2
